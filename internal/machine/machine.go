// Package machine is the discrete-time simulator of a multicore Intel-style
// socket: per-core DVFS, a socket-wide uncore frequency, an analytic
// memory-path model, a CMOS power model feeding an emulated RAPL counter,
// and a PMU exposing INST_RETIRED and TOR_INSERT through the MSR file.
//
// Software under test (the parallel runtimes and the Cuttlefish daemon)
// interacts with the machine only the way it would with real hardware:
// work is supplied as instruction/miss segments, frequencies are requested
// by writing IA32_PERF_CTL and MSR 0x620 through the msr-safe device, and
// the daemon reads the PMU and RAPL registers. This keeps the control path
// under study identical to the paper's.
package machine

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/freq"
	"repro/internal/msr"
	"repro/internal/perfmon"
	"repro/internal/power"
	"repro/internal/workload"
)

// coreState is one simulated core.
type coreState struct {
	ratio   freq.Ratio
	duty    float64 // DDCM duty fraction (1.0 = unmodulated)
	seg     workload.Segment
	segLeft float64 // instructions remaining in seg
	haveSeg bool
	stolen  float64 // seconds of the next quantum consumed by a daemon

	// lifetime accounting (simulation ground truth, not PMU-visible)
	busySec  float64
	stallSec float64
	idleSec  float64
}

// quantumDelta is the per-core result of executing one quantum, merged into
// machine state after all cores ran (keeping the parallel driver race-free).
type quantumDelta struct {
	instr      float64
	missLocal  float64
	missRemote float64
	computeSec float64
	stallSec   float64
	idleSec    float64
}

// Component is stepped at a fixed simulated period; the Cuttlefish daemon
// and trace recorders are components. Tick returns the CPU time the
// component consumed on its pinned core, which the machine steals from that
// core's next quantum (the paper's daemon time-shares core 0).
type Component struct {
	Period float64
	Core   int
	Tick   func(now float64) (cpuTax float64)

	next float64
}

// Machine is one simulated socket executing a workload source.
type Machine struct {
	cfg  Config
	file *msr.File
	dev  *msr.Device
	pmu  *perfmon.PMU
	rapl *power.Rapl

	mu          sync.Mutex
	cores       []coreState
	uncoreMin   freq.Ratio // firmware floor from MSR 0x620
	uncoreMax   freq.Ratio // firmware ceiling from MSR 0x620
	uncoreRatio freq.Ratio // actual operating point
	firmware    UncoreFirmware
	now         float64
	demandEWMA  float64 // misses/second arriving at the uncore
	comps       []*Component
	src         workload.Source

	totalInstr    float64
	totalMissL    float64
	totalMissR    float64
	uncoreGHzSecs float64 // ∫ uncore frequency dt, for time-weighted averages
}

// UncoreFirmware decides the uncore operating point each millisecond when
// MSR 0x620 leaves it a range to move in (the Default execution's "Auto"
// BIOS mode, §2). A nil firmware pins the uncore at the range maximum.
type UncoreFirmware interface {
	// Target returns the desired uncore ratio given the smoothed miss
	// demand (misses/second) and the legal range.
	Target(demand float64, min, max freq.Ratio) freq.Ratio
}

// New creates a machine. The source may be nil (all cores idle); it can be
// attached later with SetSource.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		file:  msr.NewFile(cfg.Cores),
		pmu:   perfmon.New(cfg.Cores),
		rapl:  power.NewHaswellRapl(),
		cores: make([]coreState, cfg.Cores),
	}
	m.dev = msr.NewDevice(m.file, msr.DefaultAllowlist())
	for i := range m.cores {
		m.cores[i].ratio = cfg.CoreGrid.Max
		m.cores[i].duty = 1.0
		// Seed the stored register image to the boot state so msr-safe
		// Save/Restore brackets capture real values.
		m.file.Poke(msr.IA32PerfCtl, i, msr.PerfCtlRaw(uint8(cfg.CoreGrid.Max)))
	}
	m.uncoreMin = cfg.UncoreGrid.Min
	m.uncoreMax = cfg.UncoreGrid.Max
	m.uncoreRatio = cfg.UncoreGrid.Max
	m.file.Poke(msr.UncoreRatioLimit, 0, msr.UncoreLimitRaw(uint8(cfg.UncoreGrid.Min), uint8(cfg.UncoreGrid.Max)))
	m.pmu.InstallHandlers(m.file)
	m.installFrequencyHandlers()
	m.installRaplHandler()
	return m, nil
}

// MustNew is New for configurations known good at compile time.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// SetSource attaches the workload. It must be called before Run.
func (m *Machine) SetSource(s workload.Source) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.src = s
}

func (m *Machine) installFrequencyHandlers() {
	m.file.Install(msr.IA32PerfCtl, msr.Handler{
		Write: func(core int, v uint64) error {
			r := m.cfg.CoreGrid.Clamp(freq.Ratio(msr.PerfCtlRatio(v)))
			m.mu.Lock()
			m.cores[core].ratio = r
			m.mu.Unlock()
			return nil
		},
	})
	m.file.Install(msr.IA32PerfStatus, msr.Handler{
		Read: func(core int) uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return msr.PerfCtlRaw(uint8(m.cores[core].ratio))
		},
	})
	m.file.Install(msr.IA32ClockModulation, msr.Handler{
		Write: func(core int, v uint64) error {
			m.mu.Lock()
			m.cores[core].duty = msr.ClockModDuty(v)
			m.mu.Unlock()
			return nil
		},
	})
	m.file.Install(msr.UncoreRatioLimit, msr.Handler{
		Write: func(_ int, v uint64) error {
			lo, hi := msr.UncoreLimitRatios(v)
			if lo > hi {
				return fmt.Errorf("machine: uncore limit min %d > max %d", lo, hi)
			}
			m.mu.Lock()
			m.uncoreMin = m.cfg.UncoreGrid.Clamp(freq.Ratio(lo))
			m.uncoreMax = m.cfg.UncoreGrid.Clamp(freq.Ratio(hi))
			// Snap the operating point into the new range immediately, as
			// hardware does; the firmware may move it within range later.
			if m.uncoreRatio < m.uncoreMin {
				m.uncoreRatio = m.uncoreMin
			}
			if m.uncoreRatio > m.uncoreMax {
				m.uncoreRatio = m.uncoreMax
			}
			m.mu.Unlock()
			return nil
		},
		Read: func(int) uint64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return msr.UncoreLimitRaw(uint8(m.uncoreMin), uint8(m.uncoreMax))
		},
	})
}

func (m *Machine) installRaplHandler() {
	m.file.Install(msr.PkgEnergyStatus, msr.Handler{
		Read: func(int) uint64 { return uint64(m.rapl.Counter()) },
	})
}

// SetFirmware installs the Auto-mode uncore governor used by Default runs.
func (m *Machine) SetFirmware(fw UncoreFirmware) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.firmware = fw
}

// Schedule registers a periodic component starting at time start.
func (m *Machine) Schedule(c *Component, start float64) {
	if c.Period <= 0 {
		panic("machine: component period must be positive")
	}
	c.next = start
	m.mu.Lock()
	defer m.mu.Unlock()
	m.comps = append(m.comps, c)
}

// Device returns the msr-safe access path software should use.
func (m *Machine) Device() *msr.Device { return m.dev }

// File returns the raw register file (hardware-model use only).
func (m *Machine) File() *msr.File { return m.file }

// PMU returns the performance-monitoring unit.
func (m *Machine) PMU() *perfmon.PMU { return m.pmu }

// Rapl returns the package energy counter.
func (m *Machine) Rapl() *power.Rapl { return m.rapl }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Now returns the simulation time in seconds.
func (m *Machine) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// UncoreRatio returns the current uncore operating point.
func (m *Machine) UncoreRatio() freq.Ratio {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.uncoreRatio
}

// CoreRatio returns core i's current frequency ratio.
func (m *Machine) CoreRatio(i int) freq.Ratio {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cores[i].ratio
}

// DemandEWMA returns the smoothed LLC-miss demand in misses/second.
func (m *Machine) DemandEWMA() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.demandEWMA
}

// TotalInstructions returns the exact count of retired instructions.
func (m *Machine) TotalInstructions() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalInstr
}

// TotalEnergy returns the exact package energy in joules.
func (m *Machine) TotalEnergy() float64 { return m.rapl.TotalJoules() }

// AvgUncoreGHz returns the time-weighted average uncore frequency since
// boot — what the paper's Table 2 reports as the Default execution's
// effective uncore setting.
func (m *Machine) AvgUncoreGHz() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.now == 0 {
		return m.uncoreRatio.GHz()
	}
	return m.uncoreGHzSecs / m.now
}

// TotalMisses returns the exact local and remote TOR insert counts.
func (m *Machine) TotalMisses() (local, remote float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totalMissL, m.totalMissR
}

// Utilization returns the lifetime busy fraction of core i.
func (m *Machine) Utilization(i int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := &m.cores[i]
	total := c.busySec + c.stallSec + c.idleSec
	if total == 0 {
		return 0
	}
	return (c.busySec + c.stallSec) / total
}

// StealCoreTime removes sec seconds from core i's next quantum; used by
// daemon components to model time-sharing with the application.
func (m *Machine) StealCoreTime(i int, sec float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cores[i].stolen += sec
}

// Run advances the simulation until the source reports done and every core
// has drained its in-flight segment, or maxSim seconds have elapsed,
// whichever comes first. It returns the elapsed simulated time.
func (m *Machine) Run(maxSim float64) float64 {
	start := m.Now()
	for m.Now()-start < maxSim {
		if m.Finished() {
			break
		}
		m.Step()
	}
	return m.Now() - start
}

// Finished reports whether the workload is complete: the source has no more
// work and no core holds a partially executed segment.
func (m *Machine) Finished() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.src == nil || !m.src.Done() {
		return false
	}
	for i := range m.cores {
		if m.cores[i].haveSeg {
			return false
		}
	}
	return true
}

// Step advances one quantum: execute all cores, merge accounting into the
// PMU, integrate power into RAPL, step the firmware governor and fire due
// components.
func (m *Machine) Step() {
	m.mu.Lock()
	dt := m.cfg.QuantumSec
	src := m.src
	uncore := m.uncoreRatio
	stall := m.cfg.Mem.StallPerMiss(uncore.GHz(), m.demandEWMA)
	now := m.now
	m.mu.Unlock()

	deltas := make([]quantumDelta, m.cfg.Cores)
	if m.cfg.Workers > 1 {
		m.stepCoresParallel(src, now, dt, stall, deltas)
	} else {
		for i := range deltas {
			deltas[i] = m.stepCore(i, src, now, dt, stall)
		}
	}

	var instr, missL, missR float64
	var corePower float64
	m.mu.Lock()
	for i := range deltas {
		d := &deltas[i]
		instr += d.instr
		missL += d.missLocal
		missR += d.missRemote
		c := &m.cores[i]
		c.busySec += d.computeSec
		c.stallSec += d.stallSec
		c.idleSec += d.idleSec
		// Under DDCM the stretched compute time switches transistors only
		// duty of the time; voltage and leakage are untouched, which is
		// the knob's classic energy disadvantage vs DVFS.
		activity := (d.computeSec*c.duty + m.cfg.StallActivity*d.stallSec) / dt
		corePower += m.cfg.Power.CorePower(c.ratio.GHz(), activity)
	}
	missRate := (missL + missR) / dt
	a := m.cfg.TrafficAlpha
	m.demandEWMA = a*missRate + (1-a)*m.demandEWMA
	rho := m.cfg.Mem.Utilization(m.demandEWMA, uncore.GHz())
	pkgPower := corePower + m.cfg.Power.UncorePower(uncore.GHz(), rho) + m.cfg.Power.Base
	m.totalInstr += instr
	m.totalMissL += missL
	m.totalMissR += missR
	m.uncoreGHzSecs += uncore.GHz() * dt
	m.now += dt
	nowAfter := m.now

	// Firmware moves the uncore within the 0x620 range once per step.
	if m.firmware != nil && m.uncoreMin < m.uncoreMax {
		m.uncoreRatio = m.cfg.UncoreGrid.Clamp(m.firmware.Target(m.demandEWMA, m.uncoreMin, m.uncoreMax))
		if m.uncoreRatio < m.uncoreMin {
			m.uncoreRatio = m.uncoreMin
		}
		if m.uncoreRatio > m.uncoreMax {
			m.uncoreRatio = m.uncoreMax
		}
	}
	comps := m.dueComponents(nowAfter)
	m.mu.Unlock()

	m.pmu.AddTor(missL, missR)
	for i := range deltas {
		if deltas[i].instr > 0 {
			m.pmu.AddRetired(i, deltas[i].instr)
		}
	}
	m.rapl.Deposit(pkgPower*dt, nowAfter)

	for _, c := range comps {
		tax := c.Tick(nowAfter)
		if tax > 0 {
			m.StealCoreTime(c.Core, tax)
		}
	}
}

func (m *Machine) dueComponents(now float64) []*Component {
	var due []*Component
	for _, c := range m.comps {
		if now >= c.next-1e-12 {
			due = append(due, c)
			c.next += c.Period
			// Never schedule into the past if a component was starved.
			if c.next < now {
				c.next = now + c.Period
			}
		}
	}
	return due
}

// stepCore executes core i for one quantum and returns its accounting.
func (m *Machine) stepCore(i int, src workload.Source, now, dt, stallPerMiss float64) quantumDelta {
	m.mu.Lock()
	c := &m.cores[i]
	budget := dt - c.stolen
	c.stolen = 0
	ratio := c.ratio
	duty := c.duty
	seg := c.seg
	segLeft := c.segLeft
	haveSeg := c.haveSeg
	m.mu.Unlock()
	if duty <= 0 || duty > 1 {
		duty = 1
	}

	var d quantumDelta
	if budget <= 0 {
		// The daemon ate the whole quantum (pathological Tinv); the core
		// makes no progress and the overdraft is dropped.
		return d
	}
	fHz := ratio.Hz()
	for budget > 1e-12 {
		if !haveSeg {
			if src == nil {
				break
			}
			var ok bool
			seg, ok = src.NextSegment(i, now)
			if !ok {
				break
			}
			if !seg.Valid() {
				panic(fmt.Sprintf("machine: invalid segment %v from source", seg))
			}
			segLeft = seg.Instructions
			haveSeg = true
			if segLeft <= 0 {
				haveSeg = false
				src.Complete(i, now)
				continue
			}
		}
		ipc := seg.IPC
		if ipc <= 0 {
			ipc = m.cfg.BaseIPC
		}
		// DDCM gating stretches issue time by 1/duty (the clock only runs
		// duty of the time) while in-flight memory accesses drain at full
		// speed — the knob throttles compute without touching voltage.
		perInstrCompute := 1 / (ipc * fHz * duty)
		perInstrStall := seg.MissPerInstr * seg.StallFraction() * stallPerMiss
		perInstr := perInstrCompute + perInstrStall
		instr := budget / perInstr
		finished := false
		if instr >= segLeft {
			instr = segLeft
			haveSeg = false
			finished = true
		}
		segLeft -= instr
		used := instr * perInstr
		budget -= used
		d.instr += instr
		d.computeSec += instr * perInstrCompute
		d.stallSec += instr * perInstrStall
		miss := instr * seg.MissPerInstr
		d.missRemote += miss * seg.RemoteFrac
		d.missLocal += miss * (1 - seg.RemoteFrac)
		if finished {
			segLeft = 0
			src.Complete(i, now)
		}
	}
	d.idleSec += math.Max(0, budget)

	m.mu.Lock()
	c = &m.cores[i]
	c.seg = seg
	c.segLeft = segLeft
	c.haveSeg = haveSeg
	m.mu.Unlock()
	return d
}

// stepCoresParallel shards cores across worker goroutines. The workload
// source must be safe for concurrent NextSegment calls.
func (m *Machine) stepCoresParallel(src workload.Source, now, dt, stall float64, deltas []quantumDelta) {
	workers := m.cfg.Workers
	if workers > len(deltas) {
		workers = len(deltas)
	}
	var wg sync.WaitGroup
	next := make(chan int, len(deltas))
	for i := range deltas {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				deltas[i] = m.stepCore(i, src, now, dt, stall)
			}
		}()
	}
	wg.Wait()
}
