package machine

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/mem"
	"repro/internal/power"
)

// Config describes the simulated socket.
type Config struct {
	// Cores is the number of physical cores (the paper's part has 20).
	Cores int
	// CoreGrid and UncoreGrid are the DVFS and UFS frequency grids.
	CoreGrid   freq.Grid
	UncoreGrid freq.Grid
	// QuantumSec is the simulation step. It must divide the RAPL update
	// interval evenly for faithful counter behaviour; 0.5 ms default.
	QuantumSec float64
	// BaseIPC applies to segments that do not specify their own IPC.
	BaseIPC float64
	// StallActivity is the effective switching activity of a core during a
	// memory stall (clock running, pipeline mostly idle).
	StallActivity float64
	// TrafficAlpha is the EWMA smoothing constant for the miss-demand
	// estimate used by the queueing model and the firmware UFS governor.
	TrafficAlpha float64
	// Mem and Power are the memory-path and power models.
	Mem   mem.Params
	Power power.Params
	// Workers > 1 shards cores across that many persistent engine worker
	// goroutines. 0 or 1 selects the serial driver. Both drivers walk the
	// same arithmetic in the same order; results are bit-identical for
	// sources whose scheduling does not depend on same-quantum call order
	// across cores (see the engine's concurrency notes).
	Workers int
	// BatchQuanta caps how many quanta the engine executes per dispatch
	// when Run batches between component deadlines. 0 means unbounded
	// (run to the next event), which is the fast default; 1 reproduces
	// quantum-at-a-time stepping.
	BatchQuanta int
	// Profile enables wall-clock self-accounting: per-worker busy time and
	// per-batch dispatch wall time, read through Machine.Profile. It adds
	// two clock reads per worker per quantum and never affects simulated
	// state — results are bit-identical with it on or off.
	Profile bool
}

// DefaultConfig returns the paper's machine: a 20-core Haswell-class socket,
// core DVFS 1.2–2.3 GHz, uncore 1.2–3.0 GHz.
func DefaultConfig() Config {
	return Config{
		Cores:         20,
		CoreGrid:      freq.HaswellCore(),
		UncoreGrid:    freq.HaswellUncore(),
		QuantumSec:    0.5e-3,
		BaseIPC:       2.0,
		StallActivity: 0.28,
		TrafficAlpha:  0.35,
		Mem:           mem.DefaultParams(),
		Power:         power.DefaultParams(),
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("machine: cores must be positive, got %d", c.Cores)
	}
	if !c.CoreGrid.Valid() || !c.UncoreGrid.Valid() {
		return fmt.Errorf("machine: invalid frequency grids %v %v", c.CoreGrid, c.UncoreGrid)
	}
	if c.QuantumSec <= 0 {
		return fmt.Errorf("machine: quantum must be positive, got %g", c.QuantumSec)
	}
	if c.BaseIPC <= 0 {
		return fmt.Errorf("machine: base IPC must be positive, got %g", c.BaseIPC)
	}
	if c.TrafficAlpha <= 0 || c.TrafficAlpha > 1 {
		return fmt.Errorf("machine: traffic alpha must be in (0,1], got %g", c.TrafficAlpha)
	}
	if c.Workers < 0 {
		return fmt.Errorf("machine: workers must be non-negative, got %d", c.Workers)
	}
	if c.BatchQuanta < 0 {
		return fmt.Errorf("machine: batch quanta must be non-negative, got %d", c.BatchQuanta)
	}
	return nil
}
