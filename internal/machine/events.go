package machine

import (
	"container/heap"
	"sort"
)

// eventQueue orders scheduled components by their next deadline in a
// min-heap, replacing the former linear scan over every component each
// quantum. Ties fire in scheduling order (seq), so multi-component machines
// stay deterministic.
type eventQueue struct {
	items   []*Component
	nextSeq uint64
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.next != b.next {
		return a.next < b.next
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].idx = i
	q.items[j].idx = j
}

func (q *eventQueue) Push(x any) {
	c := x.(*Component)
	c.idx = len(q.items)
	q.items = append(q.items, c)
}

func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	c.idx = -1
	q.items = old[:n-1]
	return c
}

// schedule inserts c with its deadline already set.
func (q *eventQueue) schedule(c *Component) {
	c.seq = q.nextSeq
	q.nextSeq++
	heap.Push(q, c)
}

// unschedule removes c if it is currently queued.
func (q *eventQueue) unschedule(c *Component) bool {
	if c.idx < 0 || c.idx >= len(q.items) || q.items[c.idx] != c {
		return false
	}
	heap.Remove(q, c.idx)
	return true
}

// peek returns the earliest deadline, or ok == false when nothing is
// scheduled.
func (q *eventQueue) peek() (next float64, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].next, true
}

// componentsBySeq returns every scheduled component in scheduling (seq)
// order — the canonical order machine snapshots use, so a restored
// machine can match deadlines back to the same components.
func (q *eventQueue) componentsBySeq() []*Component {
	out := append([]*Component(nil), q.items...)
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// snapshotBySeq exports the scheduled components' identities and
// deadlines in seq order.
func (q *eventQueue) snapshotBySeq() []ComponentSnapshot {
	comps := q.componentsBySeq()
	out := make([]ComponentSnapshot, len(comps))
	for i, c := range comps {
		out[i] = ComponentSnapshot{Period: c.Period, Core: c.Core, Next: c.next}
	}
	return out
}

// reinit re-establishes the heap invariant after deadlines were rewritten
// in place (snapshot restore).
func (q *eventQueue) reinit() {
	heap.Init(q)
	for i, c := range q.items {
		c.idx = i
	}
}

// popDue collects every component due at now into buf (advancing each
// deadline by its period) and returns the extended buffer. Components fire
// at most once per call, in deadline-then-schedule order.
func (q *eventQueue) popDue(now float64, buf []*Component) []*Component {
	for len(q.items) > 0 {
		c := q.items[0]
		if now < c.next-1e-12 {
			break
		}
		c.next += c.Period
		// Never schedule into the past if a component was starved.
		if c.next < now {
			c.next = now + c.Period
		}
		heap.Fix(q, 0)
		buf = append(buf, c)
	}
	return buf
}
