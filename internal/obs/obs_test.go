package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestSpanIDsDeterministic pins the core tracing property: two traces of
// the same request shape have identical span IDs regardless of the order
// concurrent spans were created in, while durations are free to differ.
func TestSpanIDsDeterministic(t *testing.T) {
	build := func(reverse bool) map[string]string {
		tr := NewTrace("abc123")
		root := tr.Root()
		exec := root.Child("execute")
		n := 4
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			i := i
			if reverse {
				i = n - 1 - i
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rep := exec.ChildLane(spanName("rep", i), i+1)
				rep.Child("simulate").End()
				rep.End()
			}()
		}
		wg.Wait()
		exec.End()
		root.End()
		ids := make(map[string]string)
		for _, s := range tr.Export().Spans {
			ids[s.Name+"/"+s.Parent] = s.ID
		}
		return ids
	}
	a, b := build(false), build(true)
	if len(a) != len(b) {
		t.Fatalf("span count differs: %d vs %d", len(a), len(b))
	}
	for k, id := range a {
		if b[k] != id {
			t.Errorf("span %q ID differs across runs: %s vs %s", k, id, b[k])
		}
	}
}

func spanName(prefix string, i int) string {
	return prefix + "-" + string(rune('0'+i))
}

// TestSpanNilSafety: a nil trace/span must swallow the whole API so
// untraced code runs the same path as traced code.
func TestSpanNilSafety(t *testing.T) {
	var tr *Trace
	root := tr.Root()
	if root != nil {
		t.Fatal("nil trace must yield nil root")
	}
	child := root.Child("x")
	child.Set("k", 1)
	child.ChildLane("y", 3).End()
	child.End()
	tr.SetID("z")
	if tr.ID() != "" {
		t.Error("nil trace ID must be empty")
	}
	if got := child.String(); got != "<nil span>" {
		t.Errorf("nil span String = %q", got)
	}
	var st *TraceStore
	if err := st.Save(tr); err != nil {
		t.Errorf("nil store Save: %v", err)
	}
	if _, ok := st.Get("x"); ok {
		t.Error("nil store Get must miss")
	}
	var reg *Registry
	c := reg.Counter("x_total", "h")
	c.Inc() // still counts, just unexported
	reg.GaugeFunc("y", "h", func() float64 { return 1 })
	reg.Histogram("z", "h").Observe(0.5)
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil registry write: %v", err)
	}
}

// TestWriteChromeFormat validates the export against the trace-event
// schema: a traceEvents array of complete ("X") events with numeric
// ts/dur in microseconds.
func TestWriteChromeFormat(t *testing.T) {
	tr := NewTrace("deadbeef")
	s := tr.Root().Child("cache_probe")
	s.Set("outcome", "miss")
	s.End()
	tr.Root().End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any  `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	if doc.Metadata["trace_id"] != "deadbeef" {
		t.Errorf("metadata trace_id = %q", doc.Metadata["trace_id"])
	}
	for _, e := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Errorf("event missing %q: %v", k, e)
			}
		}
		if e["ph"] != "X" {
			t.Errorf("ph = %v, want X", e["ph"])
		}
		if _, ok := e["ts"].(float64); !ok {
			t.Errorf("ts is not numeric: %v", e["ts"])
		}
	}
}

func TestTraceStoreRingAndPrefix(t *testing.T) {
	dir := t.TempDir()
	st := NewTraceStore(2, dir)
	for _, id := range []string{"aaaa1111", "bbbb2222", "cccc3333"} {
		tr := NewTrace(id)
		tr.Root().End()
		if err := st.Save(tr); err != nil {
			t.Fatalf("save %s: %v", id, err)
		}
	}
	if st.Len() != 2 {
		t.Fatalf("ring len = %d, want 2 (capacity)", st.Len())
	}
	if _, ok := st.Get("aaaa1111"); ok {
		t.Error("oldest trace must be evicted")
	}
	if tr, ok := st.Get("cccc"); !ok || tr.ID() != "cccc3333" {
		t.Error("prefix lookup failed")
	}
	if got := st.IDs(); len(got) != 2 {
		t.Errorf("IDs = %v, want 2 entries", got)
	}
	// Dir mirror: all three were written (eviction doesn't delete files).
	files, err := filepath.Glob(filepath.Join(dir, "trace-*.json"))
	if err != nil || len(files) != 3 {
		t.Fatalf("trace files = %v (err %v), want 3", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Error("trace file missing traceEvents")
	}
}

// TestRegistryPrometheusFormat pins the exposition format: HELP/TYPE
// lines, escaped labels, histogram _bucket/_sum/_count with cumulative
// monotone buckets ending at +Inf.
func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cf_cache_requests_total", "Cache outcomes.", Label{"outcome", "hit"})
	c.Add(3)
	reg.Counter("cf_cache_requests_total", "Cache outcomes.", Label{"outcome", "miss"}).Inc()
	reg.GaugeFunc("cf_queue_depth", "Jobs queued.", func() float64 { return 7 })
	h := reg.Histogram("cf_exec_seconds", "Exec latency.", Label{"governor", `she"p`})
	h.Observe(0.01)
	h.Observe(0.25)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP cf_cache_requests_total Cache outcomes.",
		"# TYPE cf_cache_requests_total counter",
		`cf_cache_requests_total{outcome="hit"} 3`,
		`cf_cache_requests_total{outcome="miss"} 1`,
		"# TYPE cf_queue_depth gauge",
		"cf_queue_depth 7",
		"# TYPE cf_exec_seconds histogram",
		`governor="she\"p"`,
		`le="+Inf"`,
		"cf_exec_seconds_count{", // labeled count line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP for a family must appear exactly once even with two series.
	if n := strings.Count(out, "# HELP cf_cache_requests_total"); n != 1 {
		t.Errorf("HELP repeated %d times", n)
	}
	// Bucket counts must be cumulative: parse and check monotone.
	var last uint64
	var seen int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "cf_exec_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if v < last {
			t.Errorf("bucket counts not monotone: %d after %d", v, last)
		}
		last = v
		seen++
	}
	if seen == 0 || last != 2 {
		t.Errorf("buckets seen=%d last=%d, want last=2", seen, last)
	}
}
