package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// TraceStore keeps the most recent traces in a bounded ring, keyed by
// trace ID (the spec content hash), and optionally mirrors each saved
// trace to a directory as Chrome trace-event JSON. A nil *TraceStore is a
// no-op, so the service can run untraced through the same code path.
type TraceStore struct {
	mu      sync.Mutex
	cap     int
	dir     string
	ring    []*Trace          // oldest first
	byID    map[string]*Trace // latest trace per ID wins
	evicted uint64
}

// NewTraceStore returns a store keeping up to capacity traces (minimum 1).
// If dir is non-empty each saved trace is also written to
// dir/trace-<id12>.json, latest save winning.
func NewTraceStore(capacity int, dir string) *TraceStore {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceStore{cap: capacity, dir: dir, byID: make(map[string]*Trace)}
}

// Save records t as the latest trace for its ID and, when the store has a
// directory, writes the Chrome-format file. The write error (if any) is
// returned but the in-memory save always succeeds.
func (s *TraceStore) Save(t *Trace) error {
	if s == nil || t == nil {
		return nil
	}
	id := t.ID()
	s.mu.Lock()
	s.ring = append(s.ring, t)
	if len(s.ring) > s.cap {
		evict := s.ring[0]
		s.ring = s.ring[1:]
		if s.byID[evict.ID()] == evict {
			delete(s.byID, evict.ID())
		}
		s.evicted++
	}
	if id != "" {
		s.byID[id] = t
	}
	dir := s.dir
	s.mu.Unlock()

	if dir == "" || id == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("trace dir: %w", err)
	}
	short := id
	if len(short) > 12 {
		short = short[:12]
	}
	path := filepath.Join(dir, "trace-"+short+".json")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace file: %w", err)
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Get returns the latest trace whose ID matches id exactly or has id as a
// prefix (the API accepts the same short hashes as /v1/runs/{id}).
func (s *TraceStore) Get(id string) (*Trace, bool) {
	if s == nil || id == "" {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.byID[id]; ok {
		return t, true
	}
	// Prefix match, newest first.
	for i := len(s.ring) - 1; i >= 0; i-- {
		if strings.HasPrefix(s.ring[i].ID(), id) {
			return s.ring[i], true
		}
	}
	return nil, false
}

// IDs returns the distinct trace IDs currently held, sorted.
func (s *TraceStore) IDs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.byID))
	for id := range s.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Len returns the number of traces in the ring.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Evicted reports how many traces the retention cap has dropped since
// the store was created — the figure a long-lived cfserve exposes so
// operators can tell a short history from a quiet one.
func (s *TraceStore) Evicted() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// Cap reports the retention capacity.
func (s *TraceStore) Cap() int {
	if s == nil {
		return 0
	}
	return s.cap
}
