// Package obs is the unified observability layer: span-based run tracing
// (exportable as Chrome trace-event JSON), a Prometheus-style metrics
// registry, and the in-memory trace store behind cfserve's
// GET /v1/runs/{id}/trace.
//
// The one inviolable rule of this package is the determinism boundary:
// nothing here may ever touch canonical report bytes, cache keys or memo
// keys. Traces and metrics describe *how* a run was served — wall-clock
// durations, cache outcomes, worker utilization — while the report bytes
// stay a pure function of the spec. Span *structure* (IDs, parent links,
// names) is itself deterministic: a span's ID is a hash of its path from
// the root, so two traces of the same spec have identical shapes and only
// their timestamps differ.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace is one request's span tree. Create with NewTrace, grow with
// Span.Child, export with WriteChrome or Export. Safe for concurrent use:
// repetitions of one run record sibling spans from pool workers.
type Trace struct {
	mu         sync.Mutex
	id         string
	parentSpan string // external span this trace's root is parented under
	base       time.Time
	spans      []*Span
	root       *Span
	extra      []chromeEvent // counter/instant events merged from timelines
}

// NewTrace starts a trace. id is the spec's content hash when known; it
// can be set later with SetID (the service learns the hash only after
// normalizing the spec).
func NewTrace(id string) *Trace {
	t := &Trace{id: id, base: time.Now()}
	t.root = t.newSpan(nil, "request", 0)
	return t
}

// NewTraceUnder starts a trace whose root span is parented under a span
// from another process (cross-process stitching): the root's ID derives
// from the remote parent exactly as a local child's would, so the client
// and server trees link into one trace when laid side by side. The
// remote parent appears in exports as the root's parent and in the
// trace-level parent_span field.
func NewTraceUnder(id, parentSpanID string) *Trace {
	if parentSpanID == "" {
		return NewTrace(id)
	}
	t := &Trace{id: id, parentSpan: parentSpanID, base: time.Now()}
	s := &Span{t: t, id: spanID(parentSpanID, "request"), parent: parentSpanID, name: "request", start: time.Now()}
	t.spans = append(t.spans, s)
	t.root = s
	return t
}

// SetID names the trace once the spec hash is known.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the trace's identity (the spec content hash).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id
}

// Root returns the trace's root span; nil receiver returns nil, so a
// disabled trace threads through call sites as a no-op.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Span is one timed operation in a trace. All methods are nil-safe: code
// instruments unconditionally and a nil span swallows everything, so the
// traced and untraced code paths are the same path.
type Span struct {
	t      *Trace
	id     string
	parent string
	name   string
	tid    int

	start time.Time
	mu    sync.Mutex
	durNs int64
	ended bool
	args  map[string]any
}

// spanID derives a span's ID from its path: parent ID and name. Sibling
// names are unique by construction (indices are part of the name, e.g.
// "rep-3", "region-17"), so the tree's IDs are a deterministic function
// of its structure — wall time never leaks in.
func spanID(parent, name string) string {
	sum := sha256.Sum256([]byte(parent + "\x00" + name))
	return hex.EncodeToString(sum[:8])
}

func (t *Trace) newSpan(parent *Span, name string, tid int) *Span {
	pid := ""
	if parent != nil {
		pid = parent.id
	}
	s := &Span{t: t, id: spanID(pid, name), parent: pid, name: name, tid: tid, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// ID returns the span's deterministic identity (the hash of its path
// from the root). Nil-safe; used to propagate trace context across
// processes.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Child opens a sub-span on the parent's lane. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s, name, s.tid)
}

// ChildLane opens a sub-span on its own lane (Chrome renders each lane as
// one tid row — concurrent repetitions each get a lane). Nil-safe.
func (s *Span) ChildLane(name string, lane int) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s, name, lane)
}

// Set attaches one argument (string, numeric or bool) to the span.
// Nil-safe.
func (s *Span) Set(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
	s.mu.Unlock()
}

// End closes the span. Idempotent and nil-safe; an unended span exports
// with the duration it had reached when the trace was exported.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durNs = time.Since(s.start).Nanoseconds()
	}
	s.mu.Unlock()
}

// SpanExport is one span in the structural JSON export.
type SpanExport struct {
	ID      string         `json:"id"`
	Parent  string         `json:"parent,omitempty"`
	Name    string         `json:"name"`
	Lane    int            `json:"lane"`
	StartNs int64          `json:"start_ns"` // relative to the trace start
	DurNs   int64          `json:"dur_ns"`
	Args    map[string]any `json:"args,omitempty"`
}

// TraceExport is the structural JSON form of a trace: the span tree with
// deterministic IDs and wall-clock timings.
type TraceExport struct {
	TraceID string `json:"trace_id"`
	// ParentSpan is the remote span this trace's root is parented under
	// (cross-process stitching); empty for a locally rooted trace.
	ParentSpan string       `json:"parent_span,omitempty"`
	Spans      []SpanExport `json:"spans"`
}

// snapshotLocked copies the span list; callers hold t.mu.
func (t *Trace) snapshot() (id string, spans []*Span, base time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.id, append([]*Span(nil), t.spans...), t.base
}

func (s *Span) export(base time.Time) SpanExport {
	s.mu.Lock()
	dur := s.durNs
	if !s.ended {
		dur = time.Since(s.start).Nanoseconds()
	}
	var args map[string]any
	if len(s.args) > 0 {
		args = make(map[string]any, len(s.args))
		for k, v := range s.args {
			args[k] = v
		}
	}
	s.mu.Unlock()
	return SpanExport{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Lane:    s.tid,
		StartNs: s.start.Sub(base).Nanoseconds(),
		DurNs:   dur,
		Args:    args,
	}
}

// Export returns the structural form. Spans are ordered by (lane, start),
// so the layout is stable for equal structures.
func (t *Trace) Export() TraceExport {
	id, spans, base := t.snapshot()
	t.mu.Lock()
	parent := t.parentSpan
	t.mu.Unlock()
	out := TraceExport{TraceID: id, ParentSpan: parent, Spans: make([]SpanExport, 0, len(spans))}
	for _, s := range spans {
		out.Spans = append(out.Spans, s.export(base))
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		if out.Spans[i].Lane != out.Spans[j].Lane {
			return out.Spans[i].Lane < out.Spans[j].Lane
		}
		return out.Spans[i].StartNs < out.Spans[j].StartNs
	})
	return out
}

// chromeEvent is one Chrome trace-event ("X" = complete event with
// duration). Timestamps and durations are microseconds, per the format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object flavor of the trace-event format, which
// chrome://tracing and Perfetto both load.
type chromeTrace struct {
	TraceEvents []chromeEvent     `json:"traceEvents"`
	Metadata    map[string]string `json:"metadata,omitempty"`
}

// AddCounter records a Chrome counter event (ph "C") merged into
// WriteChrome's output: Perfetto renders each named counter as a value
// track. tsMicros is the event's timestamp in the trace's microsecond
// timescale — timeline counters use simulated seconds × 1e6, which makes
// the counter tracks a pure function of simulation state even though
// span timestamps are wall-clock. Nil-safe.
func (t *Trace) AddCounter(name string, lane int, tsMicros float64, values map[string]any) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.extra = append(t.extra, chromeEvent{Name: name, Cat: "timeline", Ph: "C", Ts: tsMicros, Pid: 1, Tid: lane, Args: values})
	t.mu.Unlock()
}

// AddInstant records a Chrome instant event (ph "i"), used for governor
// decision markers on timeline lanes. Same timescale rules as
// AddCounter. Nil-safe.
func (t *Trace) AddInstant(name string, lane int, tsMicros float64, args map[string]any) {
	if t == nil {
		return
	}
	if args == nil {
		args = map[string]any{}
	}
	args["s"] = "t" // instant scope: thread
	t.mu.Lock()
	t.extra = append(t.extra, chromeEvent{Name: name, Cat: "timeline", Ph: "i", Ts: tsMicros, Pid: 1, Tid: lane, Args: args})
	t.mu.Unlock()
}

// WriteChrome writes the trace in Chrome trace-event format: open the
// file at chrome://tracing or https://ui.perfetto.dev.
func (t *Trace) WriteChrome(w io.Writer) error {
	id, spans, base := t.snapshot()
	t.mu.Lock()
	parent := t.parentSpan
	extra := append([]chromeEvent(nil), t.extra...)
	t.mu.Unlock()
	ct := chromeTrace{
		TraceEvents: make([]chromeEvent, 0, len(spans)+len(extra)),
		Metadata:    map[string]string{"trace_id": id},
	}
	if parent != "" {
		ct.Metadata["parent_span"] = parent
	}
	for _, s := range spans {
		e := s.export(base)
		args := e.Args
		if args == nil {
			args = map[string]any{}
		}
		args["span_id"] = e.ID
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: e.Name,
			Cat:  "run",
			Ph:   "X",
			Ts:   float64(e.StartNs) / 1e3,
			Dur:  float64(e.DurNs) / 1e3,
			Pid:  1,
			Tid:  e.Lane,
			Args: args,
		})
	}
	ct.TraceEvents = append(ct.TraceEvents, extra...)
	sort.SliceStable(ct.TraceEvents, func(i, j int) bool {
		if ct.TraceEvents[i].Tid != ct.TraceEvents[j].Tid {
			return ct.TraceEvents[i].Tid < ct.TraceEvents[j].Tid
		}
		return ct.TraceEvents[i].Ts < ct.TraceEvents[j].Ts
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// MarshalJSON exports the structural form, so a *Trace drops into any
// JSON envelope.
func (t *Trace) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.Export())
}

var _ fmt.Stringer = (*Span)(nil)

// String identifies a span in logs.
func (s *Span) String() string {
	if s == nil {
		return "<nil span>"
	}
	return s.name + "#" + s.id
}
