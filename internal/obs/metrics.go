package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Label is one name="value" pair on a metric.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing uint64, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// metricKind maps to the Prometheus # TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered series: exactly one of the value sources is set.
type metric struct {
	labels  []Label
	counter *Counter
	valueFn func() float64
	hist    *stats.Histogram
}

// family groups series sharing one metric name, help string and type.
type family struct {
	name    string
	help    string
	kind    metricKind
	series  []*metric
	created int // registration order, for stable output
}

// Registry holds metric families and renders them as Prometheus text
// exposition (version 0.0.4), the format `GET /metrics` serves. A nil
// *Registry is a valid no-op: every registration method returns a usable
// (but unexported) value and WritePrometheus writes nothing, so the
// service can be built with metrics disabled and instrument
// unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind metricKind, m *metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, created: r.order}
		r.order++
		r.families[name] = f
	}
	f.series = append(f.series, m)
}

// Counter registers and returns a counter series. Safe on a nil registry
// (the counter still counts; it just isn't exported).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, &metric{labels: labels, counter: c})
	return c
}

// CounterFunc registers a counter series read from fn at scrape time, for
// counts that already live in the instrumented component (one source of
// truth — no shadow counting).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindCounter, &metric{labels: labels, valueFn: fn})
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGauge, &metric{labels: labels, valueFn: fn})
}

// Histogram registers a new log-bucketed latency histogram series
// (observations in seconds). Safe on a nil registry.
func (r *Registry) Histogram(name, help string, labels ...Label) *stats.Histogram {
	h := stats.NewHistogram()
	r.HistogramVar(name, help, h, labels...)
	return h
}

// HistogramVar registers an existing histogram, for components that own
// their histogram (e.g. the service's exec-latency histogram also feeds
// /v1/stats).
func (r *Registry) HistogramVar(name, help string, h *stats.Histogram, labels ...Label) {
	r.register(name, help, kindHistogram, &metric{labels: labels, hist: h})
}

// labelString renders {a="x",b="y"}; extra appends one more pair (used for
// histogram le labels).
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		// %q escapes \, " and \n — exactly the Prometheus label escapes.
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func formatLe(le float64) string {
	if math.IsInf(le, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", le)
}

// WritePrometheus renders every registered family in text exposition
// format. Families appear in registration order; series within a family
// in registration order too, so scrapes are diff-stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].created < fams[j].created })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.series {
			switch {
			case m.hist != nil:
				snap := m.hist.Snapshot()
				for _, bk := range snap.Buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, labelString(m.labels, Label{"le", formatLe(bk.Le)}), bk.Count)
				}
				fmt.Fprintf(&b, "%s_sum%s %g\n", f.name, labelString(m.labels), snap.Sum)
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labelString(m.labels), snap.Count)
			case m.counter != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelString(m.labels), m.counter.Value())
			case m.valueFn != nil:
				fmt.Fprintf(&b, "%s%s %g\n", f.name, labelString(m.labels), m.valueFn())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
