package obs

import (
	"repro/internal/timeline"
)

// MergeTimeline folds a flight recorder into a trace as Chrome counter
// tracks (per-lane uncore ratio, aggregate IPC, cumulative energy, miss
// demand) and instant markers for governor decision events, so one
// Perfetto file shows wall-clock spans alongside the simulated-time
// machine story. Counter timestamps are simulated seconds scaled to the
// microsecond timescale, keeping the counter tracks a pure function of
// simulation state. Nil-safe on both sides.
func MergeTimeline(t *Trace, rec *timeline.Recorder) {
	if t == nil || rec == nil {
		return
	}
	ex := rec.Export()
	for i, ln := range ex.Lanes {
		// Lane 0 is the request lane in span traces; repetition lanes
		// start at 1 (matching ChildLane(fmt("rep-%d", r), r+1)).
		lane := i + 1
		prefix := ln.Lane
		if prefix == "" {
			prefix = "timeline"
		}
		for _, s := range ln.Samples {
			ts := s.T * 1e6
			t.AddCounter(prefix+"/uncore_ratio", lane, ts, map[string]any{"ratio": s.Uncore})
			t.AddCounter(prefix+"/ipc", lane, ts, map[string]any{"ipc": s.IPC})
			t.AddCounter(prefix+"/energy_j", lane, ts, map[string]any{"joules": s.EnergyJ})
			t.AddCounter(prefix+"/demand_ewma", lane, ts, map[string]any{"miss_per_sec": s.DemandEWMA})
		}
		for _, e := range ln.Events {
			args := map[string]any{"kind": e.Kind}
			if e.From != 0 || e.To != 0 {
				args["from"], args["to"] = e.From, e.To
			}
			if e.Note != "" {
				args["note"] = e.Note
			}
			t.AddInstant(prefix+"/"+e.Kind, lane, e.T*1e6, args)
		}
	}
}
