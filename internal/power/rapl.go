package power

import (
	"math"
	"sync"

	"repro/internal/msr"
)

// Rapl emulates the package RAPL energy counter: a 32-bit register counting
// fixed energy units (2^-14 J on Haswell servers) that software reads from
// MSR_PKG_ENERGY_STATUS. Like the hardware, the visible register only
// advances on update-interval boundaries (1 ms on Haswell), so two reads
// within the same millisecond return the same value — the reason the paper
// picks Tinv as a multiple of 1 ms (§5.4).
type Rapl struct {
	mu             sync.Mutex
	unitJ          float64
	updateInterval float64 // seconds
	pendingJ       float64 // deposited but not yet published
	residualJ      float64 // sub-unit remainder after publishing
	counter        uint32  // published register image
	lastPublish    float64 // sim time of last publish
	totalJ         float64 // exact ground truth for experiment reporting
}

// NewRapl creates a counter with the given energy unit (joules per tick) and
// update interval in seconds.
func NewRapl(unitJ, updateInterval float64) *Rapl {
	return &Rapl{unitJ: unitJ, updateInterval: updateInterval}
}

// NewHaswellRapl creates the counter with Haswell defaults: 2^-14 J units,
// 1 ms updates.
func NewHaswellRapl() *Rapl {
	return NewRapl(msr.EnergyUnitJoules(msr.DefaultRaplPowerUnitRaw), 1e-3)
}

// Deposit accumulates joules consumed up to simulation time now (seconds)
// and publishes to the visible register on update-interval boundaries.
func (r *Rapl) Deposit(joules, now float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totalJ += joules
	r.pendingJ += joules
	if now-r.lastPublish < r.updateInterval {
		return
	}
	r.publishLocked(now)
}

func (r *Rapl) publishLocked(now float64) {
	total := r.pendingJ + r.residualJ
	ticks := math.Floor(total / r.unitJ)
	r.residualJ = total - ticks*r.unitJ
	r.pendingJ = 0
	r.counter += uint32(ticks) // wraps naturally at 2^32
	r.lastPublish = now
}

// RaplState is the counter's complete mutable state, exported for machine
// snapshots. Every field is either an exact binary float or an integer, so
// a restore reproduces the counter bit for bit.
type RaplState struct {
	PendingJ    float64
	ResidualJ   float64
	Counter     uint32
	LastPublish float64
	TotalJ      float64
}

// State exports the mutable accumulator state.
func (r *Rapl) State() RaplState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RaplState{
		PendingJ:    r.pendingJ,
		ResidualJ:   r.residualJ,
		Counter:     r.counter,
		LastPublish: r.lastPublish,
		TotalJ:      r.totalJ,
	}
}

// SetState overwrites the accumulators from a snapshot taken by State.
func (r *Rapl) SetState(s RaplState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pendingJ = s.PendingJ
	r.residualJ = s.ResidualJ
	r.counter = s.Counter
	r.lastPublish = s.LastPublish
	r.totalJ = s.TotalJ
}

// Counter returns the visible 32-bit register image.
func (r *Rapl) Counter() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counter
}

// TotalJoules returns the exact accumulated energy (experiment ground
// truth; not visible to the profiled software).
func (r *Rapl) TotalJoules() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalJ
}

// UnitJoules returns joules per counter tick.
func (r *Rapl) UnitJoules() float64 { return r.unitJ }

// DeltaJoules converts a pair of counter reads into joules, handling a
// single 32-bit wraparound the way RAPL consumers must.
func DeltaJoules(before, after uint32, unitJ float64) float64 {
	return float64(after-before) * unitJ // uint32 arithmetic wraps correctly
}
