package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVoltageCurveMonotone(t *testing.T) {
	c := DefaultParams().CoreVF
	if c.Voltage(1.2) >= c.Voltage(2.3) {
		t.Error("voltage must rise with frequency")
	}
	if c.Voltage(1.2) < 0.7 || c.Voltage(2.3) > 1.4 {
		t.Errorf("voltages implausible: %.3f..%.3f", c.Voltage(1.2), c.Voltage(2.3))
	}
}

func TestCorePowerShape(t *testing.T) {
	p := DefaultParams()
	busyLow := p.CorePower(1.2, 1)
	busyHigh := p.CorePower(2.3, 1)
	if busyHigh <= busyLow {
		t.Error("busy core power must rise with frequency")
	}
	idle := p.CorePower(2.3, 0)
	if idle >= busyHigh {
		t.Error("idle power must be below busy power")
	}
	if idle <= 0 {
		t.Error("idle power must stay positive (leakage)")
	}
}

func TestPackageBudgetNearTDP(t *testing.T) {
	p := DefaultParams()
	pkg := 20*p.CorePower(2.3, 1) + p.UncorePower(3.0, 1) + p.Base
	if pkg < 70 || pkg > 130 {
		t.Errorf("full-tilt package power = %.1f W, want near the 105 W TDP", pkg)
	}
}

func TestLeakageAmortisation(t *testing.T) {
	// Package JPI for a compute-bound workload falls as core frequency
	// rises (Fig. 3a): with 20 busy cores plus the shared uncore (quiet,
	// at its 2.2 GHz Default point) and base power, energy per instruction
	// must be decreasing across the whole DVFS grid so that Cuttlefish
	// resolves CFopt = CFmax for low-TIPI slabs (Table 2).
	p := DefaultParams()
	shared := p.UncorePower(2.2, 0) + p.Base
	prev := math.Inf(1)
	for f := 1.2; f <= 2.31; f += 0.1 {
		pkg := 20*p.CorePower(f, 1) + shared
		jpi := pkg / (20 * 2.0 * f) // ipc 2, f in GHz: arbitrary units
		if jpi >= prev {
			t.Errorf("compute-bound package JPI not decreasing at %.1f GHz", f)
		}
		prev = jpi
	}
}

func TestUncorePowerMattersAtIdleTraffic(t *testing.T) {
	// The Default firmware parks a quiet uncore at 2.2 GHz; Cuttlefish
	// drops it to ~1.2 GHz and the paper banks 8-10% package energy on
	// compute-bound codes. The uncore floor-power delta must therefore be
	// a noticeable slice of a ~75 W compute-bound package.
	p := DefaultParams()
	delta := p.UncorePower(2.2, 0) - p.UncorePower(1.2, 0)
	pkg := 20*p.CorePower(2.3, 1) + p.UncorePower(2.2, 0) + p.Base
	if frac := delta / pkg; frac < 0.04 || frac > 0.15 {
		t.Errorf("uncore 2.2→1.2 GHz saves %.1f%% of package, want 4-15%%", frac*100)
	}
}

func TestUncoreActivityFloor(t *testing.T) {
	p := DefaultParams()
	if p.UncorePower(2.2, 0) != p.UncorePower(2.2, p.UncoreIdleActivity) {
		t.Error("activity below the floor should clamp to the floor")
	}
}

func TestPowerPositiveQuick(t *testing.T) {
	p := DefaultParams()
	f := func(fRaw, aRaw uint8) bool {
		fGHz := 1.2 + float64(fRaw%19)*0.1
		act := float64(aRaw) / 255
		return p.CorePower(fGHz, act) > 0 && p.UncorePower(fGHz, act) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRaplPublishGranularity(t *testing.T) {
	r := NewRapl(1.0/16384, 1e-3)
	r.Deposit(0.5, 0.0004) // within first ms: not published
	if r.Counter() != 0 {
		t.Errorf("counter advanced before update interval: %d", r.Counter())
	}
	r.Deposit(0.5, 0.0015) // past 1 ms: publish
	if got, want := r.Counter(), uint32(16384); got != want {
		t.Errorf("counter = %d, want %d (1 J at 2^-14 J units)", got, want)
	}
}

func TestRaplResidualCarries(t *testing.T) {
	unit := 1.0 / 16384
	r := NewRapl(unit, 1e-3)
	// Deposit 1.5 units worth, publish, then 0.6 more: total 2 units.
	r.Deposit(1.5*unit, 0.002)
	if r.Counter() != 1 {
		t.Fatalf("counter = %d, want 1", r.Counter())
	}
	r.Deposit(0.6*unit, 0.004)
	if r.Counter() != 2 {
		t.Errorf("counter = %d, want 2 (residual must carry)", r.Counter())
	}
}

func TestRaplTotalExact(t *testing.T) {
	r := NewHaswellRapl()
	sum := 0.0
	for i := 0; i < 100; i++ {
		r.Deposit(0.0123, float64(i)*5e-4)
		sum += 0.0123
	}
	if math.Abs(r.TotalJoules()-sum) > 1e-9 {
		t.Errorf("TotalJoules = %g, want %g", r.TotalJoules(), sum)
	}
}

func TestDeltaJoulesWraparound(t *testing.T) {
	unit := 1.0 / 16384
	before := uint32(0xffff_fff0)
	after := uint32(0x10)
	got := DeltaJoules(before, after, unit)
	want := 32 * unit
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("wraparound delta = %g, want %g", got, want)
	}
}

// Property: the visible counter never exceeds what was deposited and lags it
// by less than two units plus the unpublished pending energy.
func TestRaplCounterLagQuick(t *testing.T) {
	prop := func(steps []uint8) bool {
		r := NewHaswellRapl()
		now := 0.0
		dep := 0.0
		for _, s := range steps {
			j := float64(s) * 1e-4
			now += 2e-3 // always past the update interval
			r.Deposit(j, now)
			dep += j
		}
		visible := float64(r.Counter()) * r.UnitJoules()
		return visible <= dep+1e-9 && dep-visible < 2*r.UnitJoules()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
