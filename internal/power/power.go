// Package power models the energy behaviour of an Intel-style package: an
// affine voltage–frequency curve, CMOS dynamic power (C·V²·f scaled by
// activity), voltage-proportional leakage, and a RAPL-style wrapping energy
// counter updated on millisecond boundaries.
//
// The coefficients ship calibrated so that a 20-core Haswell-class package
// lands near its 105 W TDP at full tilt and reproduces the joules-per-
// instruction shapes of the paper's §3.2: compute-bound JPI falls as core
// frequency rises (leakage amortisation) and rises as uncore frequency
// rises; memory-bound JPI behaves the opposite way with an interior uncore
// optimum.
package power

// VFCurve is an affine approximation of the voltage demanded by a frequency:
// V(f) = V0 + Slope·f, with f in GHz and V in volts. Real parts publish a
// staircase of voltage/frequency pairs; affine is within a few percent
// across the Haswell DVFS window.
type VFCurve struct {
	V0    float64 // volts at 0 GHz extrapolation
	Slope float64 // volts per GHz
}

// Voltage returns the operating voltage at fGHz.
func (c VFCurve) Voltage(fGHz float64) float64 { return c.V0 + c.Slope*fGHz }

// Params are the package power-model coefficients.
type Params struct {
	CoreVF   VFCurve
	UncoreVF VFCurve

	// CoreDyn is watts per (V²·GHz) per core at activity 1.
	CoreDyn float64
	// CoreLeak is watts per volt per core.
	CoreLeak float64
	// CoreIdleActivity is the effective activity of a core with no work
	// (clock-gated but not power-gated).
	CoreIdleActivity float64

	// UncoreDyn is watts per (V²·GHz) for the whole uncore at activity 1.
	UncoreDyn float64
	// UncoreLeak is watts per volt for the uncore.
	UncoreLeak float64
	// UncoreIdleActivity is the uncore activity floor with no LLC traffic
	// (ring and LLC arrays still clocking).
	UncoreIdleActivity float64

	// Base is constant package overhead (IO, PLLs, memory controller idle).
	Base float64
}

// DefaultParams returns coefficients calibrated for the paper's Xeon
// E5-2650 v3 (20 cores, 105 W TDP). The voltage slope is deliberately
// shallow (server parts run close to Vmin across the DVFS window), which —
// together with the shared uncore/base power — makes compute-bound package
// JPI fall as core frequency rises, the Fig. 3(a) behaviour Cuttlefish's
// classifier depends on. The uncore's activity floor is high because ring
// and LLC arrays clock regardless of traffic; that floor is the energy
// Cuttlefish-Uncore harvests on compute-bound codes.
func DefaultParams() Params {
	return Params{
		CoreVF:             VFCurve{V0: 0.78, Slope: 0.10},
		UncoreVF:           VFCurve{V0: 0.78, Slope: 0.10},
		CoreDyn:            1.00,
		CoreLeak:           0.70,
		CoreIdleActivity:   0.03,
		UncoreDyn:          12.0,
		UncoreLeak:         1.20,
		UncoreIdleActivity: 0.60,
		Base:               8.0,
	}
}

// CorePower returns the power of one core at fGHz with the given activity
// in [0,1]. Activity folds together architectural utilisation and the
// reduced switching of memory-stalled cycles.
func (p Params) CorePower(fGHz, activity float64) float64 {
	v := p.CoreVF.Voltage(fGHz)
	if activity < p.CoreIdleActivity {
		activity = p.CoreIdleActivity
	}
	return p.CoreDyn*v*v*fGHz*activity + p.CoreLeak*v
}

// UncorePower returns the power of the uncore at fGHz with the given traffic
// activity in [0,1] (LLC/ring utilisation).
func (p Params) UncorePower(fGHz, activity float64) float64 {
	v := p.UncoreVF.Voltage(fGHz)
	if activity < p.UncoreIdleActivity {
		activity = p.UncoreIdleActivity
	}
	return p.UncoreDyn*v*v*fGHz*activity + p.UncoreLeak*v
}
