// Package report is the structured output layer behind every CLI
// subcommand: each experiment harness produces one RunReport — a titled,
// column-ordered row set plus metadata — which renders as an aligned text
// table, a JSON document or CSV, so downstream tooling never scrapes the
// pretty-printed output.
package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Row is one record keyed by the report's column names.
type Row map[string]any

// RunReport is the JSON-encodable result of one experiment invocation.
type RunReport struct {
	// Experiment is the subcommand that produced the report.
	Experiment string `json:"experiment"`
	// Title is the human heading the text renderer prints.
	Title string `json:"title,omitempty"`
	// Governor and Governors record which registered strategies ran.
	Governor  string   `json:"governor,omitempty"`
	Governors []string `json:"governors,omitempty"`
	// Meta echoes the run options that shape the numbers (scale, reps, …).
	Meta map[string]any `json:"meta,omitempty"`
	// Columns orders the row keys for CSV and text rendering.
	Columns []string `json:"columns"`
	Rows    []Row    `json:"rows"`
}

// New starts an empty report for the named experiment.
func New(experiment string, columns ...string) *RunReport {
	return &RunReport{Experiment: experiment, Columns: columns}
}

// AddRow appends one record; cells pair positionally with Columns.
func (r *RunReport) AddRow(cells ...any) *RunReport {
	if len(cells) != len(r.Columns) {
		panic(fmt.Sprintf("report: %s row has %d cells, want %d", r.Experiment, len(cells), len(r.Columns)))
	}
	row := make(Row, len(cells))
	for i, c := range cells {
		row[r.Columns[i]] = c
	}
	r.Rows = append(r.Rows, row)
	return r
}

// WriteJSON renders the report as an indented JSON document.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Encode renders the report in its canonical byte form: the same indented
// JSON document WriteJSON emits, as a byte slice. Go's encoder sorts map
// keys, so two structurally equal reports encode byte-identically — the
// property the service layer's content-addressed cache relies on to serve
// cached and freshly computed responses that compare equal byte for byte.
func (r *RunReport) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a JSON document produced by WriteJSON/Encode back into a
// RunReport (numbers in Rows decode as float64, per encoding/json). The
// remote client uses it to re-render server responses in any -format.
func Decode(data []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &r, nil
}

// Floats extracts one numeric column in row order. It accepts both
// in-process reports (typed cells) and Decode'd ones (every number a
// float64, per encoding/json), so consumers like the fuzz differ read
// metrics identically whether a run executed locally or arrived as
// canonical bytes from a backend. Unknown columns and non-numeric cells
// are errors — silently reading zeros would fabricate metrics.
func (r *RunReport) Floats(col string) ([]float64, error) {
	known := false
	for _, c := range r.Columns {
		if c == col {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("report: %s has no column %q (columns: %v)", r.Experiment, col, r.Columns)
	}
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		switch v := row[col].(type) {
		case float64:
			out[i] = v
		case float32:
			out[i] = float64(v)
		case int:
			out[i] = float64(v)
		case int64:
			out[i] = float64(v)
		default:
			return nil, fmt.Errorf("report: %s row %d column %q is %T, not numeric", r.Experiment, i, col, row[col])
		}
	}
	return out, nil
}

// WriteCSV renders the header and rows in column order.
func (r *RunReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Columns); err != nil {
		return err
	}
	rec := make([]string, len(r.Columns))
	for _, row := range r.Rows {
		for i, col := range r.Columns {
			rec[i] = formatCell(row[col])
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders the title and an aligned column table.
func (r *RunReport) WriteText(w io.Writer) error {
	if r.Title != "" {
		if _, err := fmt.Fprintln(w, r.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Columns, "\t"))
	for _, row := range r.Rows {
		cells := make([]string, len(r.Columns))
		for i, col := range r.Columns {
			cells[i] = formatCell(row[col])
		}
		fmt.Fprintln(tw, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

// Write renders the report in the named format: "text", "json" or "csv".
func (r *RunReport) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		return r.WriteText(w)
	case "json":
		return r.WriteJSON(w)
	case "csv":
		return r.WriteCSV(w)
	default:
		return fmt.Errorf("report: unknown format %q (want text, json or csv)", format)
	}
}

// ValidFormat reports whether format names a supported renderer.
func ValidFormat(format string) bool {
	switch format {
	case "", "text", "json", "csv":
		return true
	}
	return false
}

// formatCell renders one cell for CSV/text output. Floats use a compact
// 5-significant-digit form; nil renders empty (e.g. a geomean row's CI).
func formatCell(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', 5, 64)
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprint(x)
	}
}
