package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *RunReport {
	r := New("table1", "benchmark", "seconds", "slabs")
	r.Title = "Table 1"
	r.Governor = "default"
	r.Meta = map[string]any{"scale": 0.12}
	r.AddRow("UTS", 12.5, 1)
	r.AddRow("AMG", 30.25, 60)
	return r
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON: %s", buf.String())
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "table1" || len(back.Rows) != 2 || back.Rows[1]["benchmark"] != "AMG" {
		t.Errorf("round trip lost data: %+v", back)
	}
}

func TestWriteCSVHeaderAndOrder(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "benchmark,seconds,slabs" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "UTS,12.5,1" {
		t.Errorf("row = %q", lines[1])
	}
}

func TestWriteTextIncludesTitleAndCells(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "benchmark", "AMG", "60"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDispatchAndNilCells(t *testing.T) {
	r := New("x", "a", "b")
	r.AddRow("v", nil)
	var buf bytes.Buffer
	if err := r.Write(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	if got := strings.Split(strings.TrimSpace(buf.String()), "\n")[1]; got != "v," {
		t.Errorf("nil cell rendered %q, want empty", got)
	}
	if err := r.Write(&buf, "yaml"); err == nil {
		t.Error("unknown format must error")
	}
	if ValidFormat("yaml") || !ValidFormat("json") || !ValidFormat("") {
		t.Error("ValidFormat misclassifies")
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	New("x", "a", "b").AddRow("only-one")
}
