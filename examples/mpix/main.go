// MPI+X: per-node Cuttlefish in a bulk-synchronous distributed program,
// the deployment §4.6 of the paper sketches.
//
// Four simulated nodes run a balanced stencil exchange: each superstep is a
// long node-level OpenMP region followed by a halo exchange. One Cuttlefish
// daemon per node profiles only its own socket, so the savings match the
// single-node memory-bound case; the example also prints the per-rank wait
// breakdown to show the limitation the paper names — barrier slack is not
// reclaimed.
//
//	go run ./examples/mpix
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/governor"
	"repro/internal/sched"
	"repro/internal/workload"
)

func app() cluster.App {
	return cluster.App{
		Steps: 60,
		Compute: func(rank, step int) []sched.Region {
			return []sched.Region{{
				Seg: workload.Segment{
					Instructions: 1.2e8, // long node-level region (≈2.5 s/step)
					MissPerInstr: 0.066,
					IPC:          2.0,
					Exposure:     0.6,
				},
				Chunks: 320,
			}}
		},
		// 4 MiB halo per step: a stencil's surface-to-volume payload,
		// cheap enough to be effectively overlapped. Large *blocking*
		// collectives would inject idle gaps into the daemon's Tinv
		// windows and corrupt the JPI averages — the paper's §4.6 scope
		// restriction to programs without communication/computation
		// overlap problems exists for exactly that reason.
		ExchangeBytes: func(rank, step int) float64 { return 4 << 20 },
	}
}

func run(gov string) cluster.Result {
	cfg := cluster.DefaultConfig()
	cfg.Governor = gov
	res, err := cluster.Run(cfg, app())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("MPI+X stencil on 4 simulated nodes (balanced halo exchange)")
	def := run(governor.Default)
	fmt.Printf("Default:    %.1f s wall, %.0f J cluster energy\n", def.Seconds, def.Joules)
	cf := run(governor.Cuttlefish)
	fmt.Printf("Cuttlefish: %.1f s wall, %.0f J cluster energy\n", cf.Seconds, cf.Joules)
	fmt.Printf("energy savings %.1f%%, slowdown %.1f%%\n\n",
		100*(1-cf.Joules/def.Joules), 100*(cf.Seconds/def.Seconds-1))

	fmt.Println("per-rank breakdown (Cuttlefish):")
	for _, n := range cf.Nodes {
		fmt.Printf("  rank %d: %.0f J, compute %.1f s, barrier+comm wait %.1f s, %d slab(s)\n",
			n.Rank, n.Joules, n.BusySec, n.WaitSec, n.Daemon.List().Len())
	}
	fmt.Println("\nnote (§4.6): Cuttlefish tunes each node to its local memory access")
	fmt.Println("pattern; inter-node slack under load imbalance is out of scope.")
}
