// Heat diffusion under async–finish task parallelism, with and without
// Cuttlefish.
//
// This is the paper's motivating memory-bound scenario: a Jacobi-style
// stencil decomposed into an irregular task DAG (Fig. 1) and load-balanced
// by a work-stealing runtime. The example runs the same workload twice —
// once in the Default environment (performance governor + firmware Auto
// uncore) and once under Cuttlefish — and reports the energy/time trade,
// which should land near the paper's Heat-irt bars in Fig. 10.
//
//	go run ./examples/heatdiffusion
package main

import (
	"fmt"
	"log"

	cuttlefish "repro"
)

const scale = 0.25 // fraction of the paper's 76.6 s run

func run(withCuttlefish bool) (sec, joules float64) {
	m, err := cuttlefish.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	spec, ok := cuttlefish.BenchmarkByName("Heat-irt")
	if !ok {
		log.Fatal("Heat-irt missing from the registry")
	}
	src, err := spec.Build(cuttlefish.BenchmarkParams{
		Cores: m.Config().Cores,
		Scale: scale,
		Seed:  7,
		Model: cuttlefish.ModelHClib,
	})
	if err != nil {
		log.Fatal(err)
	}

	gov := cuttlefish.GovernorDefault
	if withCuttlefish {
		gov = cuttlefish.GovernorCuttlefish
	}
	session, err := cuttlefish.Start(m, cuttlefish.WithGovernor(gov))
	if err != nil {
		log.Fatal(err)
	}

	m.SetSource(src)
	sec = m.Run(300)
	if err := session.Stop(); err != nil {
		log.Fatal(err)
	}
	if withCuttlefish {
		for _, n := range session.Daemon().List().Nodes() {
			if n.CF.HasOpt() && n.UF.HasOpt() {
				fmt.Printf("  slab %s -> CF %v, UF %v\n",
					n.Slab.Format(0.004), n.CF.OptRatio(), n.UF.OptRatio())
			}
		}
	}
	return sec, m.TotalEnergy()
}

func main() {
	fmt.Println("Heat diffusion (irregular DAG, work-stealing runtime)")
	defSec, defJ := run(false)
	fmt.Printf("Default:    %.1f s, %.0f J (%.1f W)\n", defSec, defJ, defJ/defSec)
	cfSec, cfJ := run(true)
	fmt.Printf("Cuttlefish: %.1f s, %.0f J (%.1f W)\n", cfSec, cfJ, cfJ/cfSec)
	fmt.Printf("energy savings %.1f%%, slowdown %.1f%% (paper Heat-irt: ≈22-29%% / ≤6%%)\n",
		100*(1-cfJ/defJ), 100*(cfSec/defSec-1))
}
