// Quickstart: bracket a parallel loop with Cuttlefish and watch it find the
// energy-optimal frequencies.
//
// This is the paper's minimal usage pattern — the application only calls
// cuttlefish::start() and cuttlefish::stop(); everything else (profiling
// TIPI through the MSRs, exploring core and uncore frequencies, pinning the
// optima) happens in the daemon.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cuttlefish "repro"
)

func main() {
	m, err := cuttlefish.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	cores := m.Config().Cores

	// A memory-leaning parallel loop: 400 iterations of a work-shared
	// region, each chunk streaming through memory (0.08 misses per
	// instruction ≈ the paper's "high TIPI" band).
	loop := cuttlefish.StaticProgram([]cuttlefish.Region{{
		Seg: cuttlefish.Segment{
			Instructions: 4e6,
			MissPerInstr: 0.08,
			IPC:          1.5,
			Exposure:     0.7,
		},
		Chunks: 8 * cores,
	}}, 400)

	// cuttlefish::start()
	session, err := cuttlefish.Start(m)
	if err != nil {
		log.Fatal(err)
	}

	m.SetSource(cuttlefish.NewWorkSharing(cores, loop, 1))
	elapsed := m.Run(120)

	// cuttlefish::stop()
	if err := session.Stop(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %.1f simulated seconds, %.0f J package energy (%.1f W)\n",
		elapsed, m.TotalEnergy(), m.TotalEnergy()/elapsed)
	fmt.Printf("daemon processed %d Tinv samples and discovered %d TIPI slab(s):\n",
		session.Daemon().Samples(), session.Daemon().List().Len())
	for _, n := range session.Daemon().List().Nodes() {
		cf, uf := "exploring", "exploring"
		if n.CF.HasOpt() {
			cf = n.CF.OptRatio().String()
		}
		if n.UF.HasOpt() {
			uf = n.UF.OptRatio().String()
		}
		fmt.Printf("  TIPI %s  (%d hits)  CFopt=%s  UFopt=%s\n",
			n.Slab.Format(0.004), n.Hits, cf, uf)
	}
}
