// Tinvtuning sweeps the daemon's profiling interval and prints the
// energy/time trade-off, reproducing the paper's Table 3 study on a single
// benchmark.
//
// RAPL updates every 1 ms on Haswell, so Tinv is a multiple of that; the
// paper tries 10/20/40/60 ms and settles on 20 ms: about the savings of
// 10 ms with less slowdown. Larger Tinv stretches each exploration probe
// (10 readings per frequency), leaving more of the run at unoptimised
// frequencies.
//
//	go run ./examples/tinvtuning
package main

import (
	"fmt"
	"log"

	cuttlefish "repro"
)

const scale = 0.25

func runDefault() (float64, float64) {
	m, err := cuttlefish.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cuttlefish.Start(m, cuttlefish.WithGovernor(cuttlefish.GovernorDefault)); err != nil {
		log.Fatal(err)
	}
	spec, _ := cuttlefish.BenchmarkByName("MiniFE")
	src, err := spec.Build(cuttlefish.BenchmarkParams{Cores: m.Config().Cores, Scale: scale, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	m.SetSource(src)
	sec := m.Run(300)
	return sec, m.TotalEnergy()
}

func runWithTinv(tinv float64) (float64, float64) {
	m, err := cuttlefish.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	session, err := cuttlefish.Start(m, cuttlefish.WithTinv(tinv))
	if err != nil {
		log.Fatal(err)
	}
	spec, _ := cuttlefish.BenchmarkByName("MiniFE")
	src, err := spec.Build(cuttlefish.BenchmarkParams{Cores: m.Config().Cores, Scale: scale, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	m.SetSource(src)
	sec := m.Run(300)
	if err := session.Stop(); err != nil {
		log.Fatal(err)
	}
	return sec, m.TotalEnergy()
}

func main() {
	defSec, defJ := runDefault()
	fmt.Printf("MiniFE Default: %.1f s, %.0f J\n", defSec, defJ)
	fmt.Printf("%8s %15s %10s\n", "Tinv", "energy savings", "slowdown")
	for _, tinv := range []float64{10e-3, 20e-3, 40e-3, 60e-3} {
		sec, joules := runWithTinv(tinv)
		fmt.Printf("%6.0fms %14.1f%% %9.1f%%\n",
			tinv*1e3, 100*(1-joules/defJ), 100*(sec/defSec-1))
	}
}
