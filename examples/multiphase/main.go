// Multiphase: a custom multigrid-style solver with strongly varying memory
// access patterns, showing how Cuttlefish discovers one TIPI slab per phase
// and tunes each independently.
//
// The workload alternates three hand-built phases — a compute-heavy
// assembly, a streaming smoother and an irregular coarse-grid solve — whose
// TIPI densities span the paper's whole range (§3.2: different MAPs need
// different frequency pairs). After the run the example prints the slab
// list with each phase's discovered CFopt/UFopt, which should reproduce
// the Table 2 pattern: low-TIPI phases get fast cores and a slow uncore,
// high-TIPI phases the opposite with an interior uncore optimum.
//
//	go run ./examples/multiphase
package main

import (
	"fmt"
	"log"

	cuttlefish "repro"
)

func main() {
	m, err := cuttlefish.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	cores := m.Config().Cores
	chunks := 8 * cores

	phases := []cuttlefish.Region{
		{ // assembly: integer-heavy, cache resident
			Seg:    cuttlefish.Segment{Instructions: 3.0e7, MissPerInstr: 0.002, IPC: 1.8},
			Chunks: chunks,
		},
		{ // smoother: streaming stencil
			Seg:    cuttlefish.Segment{Instructions: 1.2e7, MissPerInstr: 0.065, IPC: 1.8, Exposure: 0.6},
			Chunks: chunks,
		},
		{ // coarse solve: pointer-chasing sparse kernel
			Seg:    cuttlefish.Segment{Instructions: 0.8e7, MissPerInstr: 0.150, IPC: 1.1, Exposure: 0.9},
			Chunks: chunks,
		},
	}
	// Each phase runs long enough (≫ Tinv) for the daemon to attribute
	// samples cleanly, cycling for 120 outer iterations.
	program := cuttlefish.StaticProgram(phases, 120)

	session, err := cuttlefish.Start(m)
	if err != nil {
		log.Fatal(err)
	}
	m.SetSource(cuttlefish.NewWorkSharing(cores, program, 3))
	elapsed := m.Run(240)
	if err := session.Stop(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("multiphase solver: %.1f simulated seconds, %.0f J\n", elapsed, m.TotalEnergy())
	fmt.Println("discovered memory access patterns (left = compute-bound):")
	fmt.Printf("%-14s %8s %10s %10s\n", "TIPI slab", "hits", "CFopt", "UFopt")
	for _, n := range session.Daemon().List().Nodes() {
		cf, uf := "-", "-"
		if n.CF.HasOpt() {
			cf = n.CF.OptRatio().String()
		}
		if n.UF.HasOpt() {
			uf = n.UF.OptRatio().String()
		}
		fmt.Printf("%-14s %8d %10s %10s\n", n.Slab.Format(0.004), n.Hits, cf, uf)
	}
}
