// Corun: two workflow components sharing one socket under a single
// Cuttlefish daemon — the paper's future-work scenario ("explore the
// possibility of using Cuttlefish to control the power of co-running
// components of a workflow on a node", §7).
//
// A compute-bound analysis component owns half the cores and a memory-bound
// data-movement component the other half. Because TIPI is measured
// socket-wide, the daemon sees the *blend* of the two access patterns and
// chooses one frequency pair for the whole socket: the printout shows the
// blended slab landing between the components' native slabs, and the
// chosen frequencies compromising between the two — precisely the open
// problem the paper defers to future work.
//
//	go run ./examples/corun
package main

import (
	"fmt"
	"log"

	cuttlefish "repro"
)

func main() {
	m, err := cuttlefish.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	cores := m.Config().Cores
	half := cores / 2

	analysis := cuttlefish.NewWorkSharing(half, cuttlefish.StaticProgram([]cuttlefish.Region{{
		Seg:    cuttlefish.Segment{Instructions: 3e7, MissPerInstr: 0.002, IPC: 1.8},
		Chunks: 8 * half,
	}}, 400), 1)
	mover := cuttlefish.NewWorkSharing(cores-half, cuttlefish.StaticProgram([]cuttlefish.Region{{
		Seg:    cuttlefish.Segment{Instructions: 1.2e7, MissPerInstr: 0.13, IPC: 1.3, Exposure: 0.8},
		Chunks: 8 * (cores - half),
	}}, 400), 2)

	part := cuttlefish.NewPartition()
	if err := part.Assign(analysis, 0, half); err != nil {
		log.Fatal(err)
	}
	if err := part.Assign(mover, half, cores); err != nil {
		log.Fatal(err)
	}

	session, err := cuttlefish.Start(m)
	if err != nil {
		log.Fatal(err)
	}
	m.SetSource(part)
	elapsed := m.Run(240)
	if err := session.Stop(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("co-run: %.1f simulated seconds, %.0f J (%.1f W)\n",
		elapsed, m.TotalEnergy(), m.TotalEnergy()/elapsed)
	fmt.Println("components: analysis TIPI ≈ 0.002 (cores 0-9), mover TIPI ≈ 0.13 (cores 10-19)")
	fmt.Println("socket-wide slabs the daemon saw (the blend):")
	for _, n := range session.Daemon().List().Nodes() {
		cf, uf := "-", "-"
		if n.CF.HasOpt() {
			cf = n.CF.OptRatio().String()
		}
		if n.UF.HasOpt() {
			uf = n.UF.OptRatio().String()
		}
		fmt.Printf("  TIPI %s  hits %5d  CFopt %-8s UFopt %s\n", n.Slab.Format(0.004), n.Hits, cf, uf)
	}
	fmt.Println("\nnote: one frequency pair serves both components — per-component")
	fmt.Println("control needs per-core DVFS policy, the paper's open future work.")
}
