// Package cuttlefish is a Go reproduction of "Cuttlefish: Library for
// Achieving Energy Efficiency in Multicore Parallel Programs" (SC 2021).
//
// The paper's library lowers the energy footprint of any multicore parallel
// program on Intel processors by profiling Model-Specific Registers online
// and adapting core (DVFS) and uncore (UFS) frequencies per memory-access
// pattern. This package reproduces that runtime — Algorithms 1–3 and the
// §4.4/§4.5 exploration-range optimisations, verbatim — on top of a
// deterministic multicore simulator standing in for the paper's 20-core
// Haswell (see DESIGN.md for the substitution argument).
//
// The programmer-facing surface mirrors the paper's two-call API:
//
//	m := cuttlefish.NewMachine(cuttlefish.DefaultMachineConfig())
//	session, _ := cuttlefish.Start(m, cuttlefish.DefaultDaemonConfig())
//	// ... run a parallel workload on m ...
//	session.Stop()
//
// Everything else — the MSR file, RAPL, the PMU, the parallel runtimes, the
// Table 1 benchmarks and the per-figure experiment harnesses — lives in the
// internal packages and is reachable through the helpers below.
package cuttlefish

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Machine is the simulated multicore socket programs run on.
type Machine = machine.Machine

// MachineConfig configures the simulated socket, including the execution
// engine's knobs: Workers shards the socket's cores across that many
// persistent host goroutines, and BatchQuanta caps how many quanta the
// engine runs per dispatch between component deadlines (0 = run to the
// next event). cmd/cfsim and cmd/cuttlefish expose both as flags.
type MachineConfig = machine.Config

// DefaultMachineConfig returns the paper's evaluation machine: a 20-core
// Haswell-class socket, core DVFS 1.2–2.3 GHz, uncore UFS 1.2–3.0 GHz.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// NewMachine builds a simulated socket.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// Policy selects which frequency domains the daemon adapts — the paper's
// three build-time variants.
type Policy = core.Policy

// The three policies of §5: full Cuttlefish, core-only and uncore-only.
const (
	PolicyBoth       = core.PolicyBoth
	PolicyCoreOnly   = core.PolicyCoreOnly
	PolicyUncoreOnly = core.PolicyUncoreOnly
)

// DaemonConfig parametrises the daemon (Tinv, warmup, slab width, policy).
type DaemonConfig = core.Config

// DefaultDaemonConfig returns the paper's deployment defaults: both-domain
// policy, Tinv = 20 ms, 2 s warmup, 0.004 TIPI slabs.
func DefaultDaemonConfig() DaemonConfig { return core.DefaultConfig() }

// Benchmark describes one of the paper's Table 1 workloads.
type Benchmark = bench.Spec

// BenchmarkParams parametrise benchmark construction.
type BenchmarkParams = bench.Params

// Model selects the parallel runtime a benchmark runs under (§5.2).
type Model = bench.Model

// The two programming models of the evaluation.
const (
	ModelOpenMP = bench.OpenMP
	ModelHClib  = bench.HClib
)

// Benchmarks returns the ten Table 1 benchmarks.
func Benchmarks() []Benchmark { return bench.All() }

// BenchmarkByName fetches a benchmark by its Table 1 name (e.g. "Heat-irt").
func BenchmarkByName(name string) (Benchmark, bool) { return bench.Get(name) }

// Session is a running Cuttlefish instance: the daemon thread plus the MSR
// save/restore bracket, created by Start and ended by Stop — the paper's
// cuttlefish::start()/cuttlefish::stop() pair.
type Session struct {
	daemon *core.Daemon
	dev    *msr.Device
	m      *Machine
	comp   *machine.Component
	done   bool
}

// Start attaches Cuttlefish to the machine: the current MSR state is saved
// (msr-safe style), the daemon is created pinned to its core, both
// frequency domains are raised to maximum, and the daemon is scheduled
// every Tinv starting after its warmup.
func Start(m *Machine, cfg DaemonConfig) (*Session, error) {
	dev := m.Device()
	dev.Save()
	now := m.Now()
	d, err := core.NewDaemon(cfg, dev, m.Config().Cores, m.Config().CoreGrid, m.Config().UncoreGrid, now)
	if err != nil {
		return nil, fmt.Errorf("cuttlefish: %w", err)
	}
	comp := &machine.Component{
		Period: cfg.TinvSec,
		Core:   cfg.PinnedCore,
		Tick:   d.Tick,
	}
	m.Schedule(comp, now+cfg.TinvSec)
	return &Session{daemon: d, dev: dev, m: m, comp: comp}, nil
}

// Stop shuts the daemon down, removes its component from the machine's
// event queue (so nothing keeps firing — or stealing core time — after the
// session ends) and restores the MSR state captured at Start. It is
// idempotent.
func (s *Session) Stop() error {
	if s.done {
		return nil
	}
	s.done = true
	s.daemon.Stop()
	s.m.Unschedule(s.comp)
	if err := s.daemon.Err(); err != nil {
		return fmt.Errorf("cuttlefish: daemon failed during run: %w", err)
	}
	return s.dev.Restore()
}

// Daemon exposes the runtime's exploration state (slab list, sample count)
// for reporting.
func (s *Session) Daemon() *core.Daemon { return s.daemon }

// Segment is the unit of simulated work: instructions with an LLC-miss
// density (the quantity TIPI measures), an IPC and a prefetch exposure.
type Segment = workload.Segment

// Source supplies segments to the machine's cores; the two runtime types
// below implement it.
type Source = workload.Source

// Region is one work-sharing parallel region (OpenMP-style static loop).
type Region = sched.Region

// RegionGen yields the region sequence of a work-sharing program.
type RegionGen = sched.RegionGen

// StaticProgram cycles a fixed region list for a number of iterations.
func StaticProgram(regions []Region, iterations int) RegionGen {
	return sched.StaticProgram(regions, iterations)
}

// NewWorkSharing builds the OpenMP-style runtime over the machine's cores.
func NewWorkSharing(cores int, gen RegionGen, seed int64) Source {
	return sched.NewWorkSharing(cores, gen, seed)
}

// Task is one async task in the async–finish model.
type Task = sched.Task

// RoundGen yields the root task set of each finish scope.
type RoundGen = sched.RoundGen

// SingleRound wraps a fixed task set as a one-round program.
func SingleRound(tasks []Task) RoundGen { return sched.SingleRound(tasks) }

// NewWorkStealing builds the HClib-style async–finish runtime.
func NewWorkStealing(cores int, gen RoundGen, seed int64) Source {
	return sched.NewWorkStealing(cores, gen, seed)
}

// Partition statically divides the socket's cores among co-running
// workloads (the paper's workflow future-work scenario). Assign each
// component a core range, then SetSource the partition on the machine.
type Partition = workload.Partition

// NewPartition creates an empty core partition.
func NewPartition() *Partition { return workload.NewPartition() }

// ApplyDefaultEnvironment configures the machine the way the paper's
// Default executions run: the performance governor pins every core at
// maximum and the firmware's Auto mode drives the uncore from memory
// traffic.
func ApplyDefaultEnvironment(m *Machine) error {
	if err := governor.Apply(governor.Performance, m.Device(), m.Config().Cores, m.Config().CoreGrid); err != nil {
		return err
	}
	m.SetFirmware(governor.DefaultAutoUFS())
	return nil
}
