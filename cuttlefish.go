// Package cuttlefish is a Go reproduction of "Cuttlefish: Library for
// Achieving Energy Efficiency in Multicore Parallel Programs" (SC 2021).
//
// The paper's library lowers the energy footprint of any multicore parallel
// program on Intel processors by profiling Model-Specific Registers online
// and adapting core (DVFS) and uncore (UFS) frequencies per memory-access
// pattern. This package reproduces that runtime — Algorithms 1–3 and the
// §4.4/§4.5 exploration-range optimisations, verbatim — on top of a
// deterministic multicore simulator standing in for the paper's 20-core
// Haswell (see DESIGN.md for the substitution argument).
//
// The programmer-facing surface mirrors the paper's two-call API, with
// functional options in place of configuration structs:
//
//	m, _ := cuttlefish.NewMachine()
//	session, _ := cuttlefish.Start(m)   // the paper's cuttlefish::start()
//	// ... run a parallel workload on m ...
//	session.Stop()                      // cuttlefish::stop()
//
// Every frequency-control strategy — the paper's three Cuttlefish variants,
// the Default environment (performance governor + firmware Auto uncore),
// fixed-frequency pins, DDCM throttling and the reactive Linux-style
// governors — is a Governor registered by name; Start attaches whichever
// one WithGovernor (or WithPolicy) selects, and RegisterGovernor adds new
// scenarios without touching any harness:
//
//	session, _ := cuttlefish.Start(m, cuttlefish.WithGovernor("ondemand"))
//
// Everything else — the MSR file, RAPL, the PMU, the parallel runtimes, the
// Table 1 benchmarks and the per-figure experiment harnesses — lives in the
// internal packages and is reachable through the helpers below.
package cuttlefish

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/freq"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Machine is the simulated multicore socket programs run on.
type Machine = machine.Machine

// MachineConfig configures the simulated socket, including the execution
// engine's knobs: Workers shards the socket's cores across that many
// persistent host goroutines, and BatchQuanta caps how many quanta the
// engine runs per dispatch between component deadlines (0 = run to the
// next event). Most callers never touch it — NewMachine's options cover
// the common knobs and WithMachineConfig is the escape hatch.
type MachineConfig = machine.Config

// DefaultMachineConfig returns the paper's evaluation machine: a 20-core
// Haswell-class socket, core DVFS 1.2–2.3 GHz, uncore UFS 1.2–3.0 GHz.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// Policy selects which frequency domains the daemon adapts — the paper's
// three build-time variants.
type Policy = core.Policy

// The three policies of §5: full Cuttlefish, core-only and uncore-only.
const (
	PolicyBoth       = core.PolicyBoth
	PolicyCoreOnly   = core.PolicyCoreOnly
	PolicyUncoreOnly = core.PolicyUncoreOnly
)

// Governor is one frequency-control strategy: Attach installs it on a
// machine (saving the MSR state it will touch) and the returned
// attachment's Detach restores everything. All strategies — built-in and
// user-registered — are constructed by name through the registry.
type Governor = governor.Governor

// GovernorTuning carries the per-run parameters a strategy may honour;
// see the Option helpers for the usual way to set them.
type GovernorTuning = governor.Tuning

// GovernorFactory builds a governor from per-run tuning.
type GovernorFactory = governor.Factory

// The built-in governor names.
const (
	// GovernorDefault is the paper's baseline environment: performance
	// governor plus firmware Auto uncore.
	GovernorDefault = governor.Default
	// GovernorCuttlefish and friends are the paper's three library builds.
	GovernorCuttlefish       = governor.Cuttlefish
	GovernorCuttlefishCore   = governor.CuttlefishCore
	GovernorCuttlefishUncore = governor.CuttlefishUncore
	// GovernorStatic pins both domains at fixed ratios.
	GovernorStatic = governor.Static
	// GovernorDDCM throttles with duty-cycle modulation at full voltage.
	GovernorDDCM = governor.DDCM
	// GovernorPowersave pins both domains at their minima.
	GovernorPowersave = governor.Powersave
	// GovernorOndemand reacts to sampled per-core throughput.
	GovernorOndemand = governor.Ondemand
)

// Governors lists the registered strategy names, sorted.
func Governors() []string { return governor.Names() }

// RegisterGovernor adds a named strategy to the registry; duplicate names
// are rejected. Registered strategies become reachable from Start, every
// experiment harness, the cluster and both CLIs.
func RegisterGovernor(name string, f GovernorFactory) error { return governor.Register(name, f) }

// NewGovernor constructs a registered strategy by name, honouring the
// tuning options (WithTinv, WithWarmup, WithStatic, …).
func NewGovernor(name string, opts ...Option) (Governor, error) {
	cfg := newConfig(opts)
	return governor.New(name, cfg.tuning)
}

// config is the resolved state behind the functional options.
type config struct {
	machine    machine.Config
	tuning     governor.Tuning
	governor   string
	havePolicy bool
	policy     Policy
}

func newConfig(opts []Option) *config {
	cfg := &config{machine: machine.DefaultConfig(), governor: governor.Cuttlefish}
	for _, o := range opts {
		o(cfg)
	}
	if cfg.havePolicy {
		switch cfg.policy {
		case core.PolicyCoreOnly:
			cfg.governor = governor.CuttlefishCore
		case core.PolicyUncoreOnly:
			cfg.governor = governor.CuttlefishUncore
		default:
			cfg.governor = governor.Cuttlefish
		}
	}
	return cfg
}

// Option configures NewMachine, Start and NewGovernor. Options that do not
// apply to a call are ignored, so one option set can configure a whole run.
type Option func(*config)

// WithCores sets the simulated core count (default: the paper's 20).
func WithCores(n int) Option { return func(c *config) { c.machine.Cores = n } }

// WithWorkers shards the simulated socket's cores across n persistent
// engine goroutines (0/1 = serial). Results are bit-identical across
// worker counts.
func WithWorkers(n int) Option { return func(c *config) { c.machine.Workers = n } }

// WithBatchQuanta caps how many quanta the engine runs per dispatch
// (0 = run to the next component deadline).
func WithBatchQuanta(n int) Option { return func(c *config) { c.machine.BatchQuanta = n } }

// WithMachineConfig replaces the whole machine configuration — the escape
// hatch for non-default grids or power models. Options apply in argument
// order, so later WithCores/WithWorkers still win over it.
func WithMachineConfig(cfg MachineConfig) Option {
	return func(c *config) { c.machine = cfg }
}

// WithGovernor selects the registered strategy Start attaches
// (default: "cuttlefish").
func WithGovernor(name string) Option { return func(c *config) { c.governor = name } }

// WithPolicy selects the Cuttlefish build variant, the paper's three
// compile-time policies. It is shorthand for WithGovernor on the matching
// variant name.
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p; c.havePolicy = true } }

// WithTinv sets the daemon's profiling interval in seconds (default: the
// paper's 20 ms) — also the ondemand governor's sampling period.
func WithTinv(sec float64) Option { return func(c *config) { c.tuning.TinvSec = sec } }

// WithWarmup sets the daemon's warmup in seconds (default: the paper's
// 2 s); negative disables the warmup.
func WithWarmup(sec float64) Option { return func(c *config) { c.tuning.WarmupSec = sec } }

// WithStatic pins the static governor's core and uncore frequency ratios
// (multiples of 100 MHz, e.g. 16 = 1.6 GHz; 0 = the grid maximum). Attach
// clamps the pins into the machine's grids.
func WithStatic(cfRatio, ufRatio int) Option {
	return func(c *config) {
		c.tuning.CF, c.tuning.UF = freq.Ratio(min(max(cfRatio, 0), 255)), freq.Ratio(min(max(ufRatio, 0), 255))
	}
}

// NewMachine builds a simulated socket from the options (WithCores,
// WithWorkers, WithBatchQuanta, WithMachineConfig).
func NewMachine(opts ...Option) (*Machine, error) {
	return machine.New(newConfig(opts).machine)
}

// Benchmark describes one of the paper's Table 1 workloads.
type Benchmark = bench.Spec

// BenchmarkParams parametrise benchmark construction.
type BenchmarkParams = bench.Params

// Model selects the parallel runtime a benchmark runs under (§5.2).
type Model = bench.Model

// The two programming models of the evaluation.
const (
	ModelOpenMP = bench.OpenMP
	ModelHClib  = bench.HClib
)

// Benchmarks returns the ten Table 1 benchmarks.
func Benchmarks() []Benchmark { return bench.All() }

// BenchmarkByName fetches a benchmark by its Table 1 name (e.g. "Heat-irt").
func BenchmarkByName(name string) (Benchmark, bool) { return bench.Get(name) }

// Session is an attached governor: for the default Cuttlefish governor,
// the daemon thread plus the MSR save/restore bracket — the paper's
// cuttlefish::start()/cuttlefish::stop() pair. Any registered governor
// runs behind the same Session surface.
type Session struct {
	name string
	att  *governor.Attachment
}

// Start attaches the selected governor to the machine. For the Cuttlefish
// variants that means: the current MSR state is saved (msr-safe style),
// the daemon is created pinned to its core, both frequency domains are
// raised to maximum, and the daemon is scheduled every Tinv starting after
// its warmup.
func Start(m *Machine, opts ...Option) (*Session, error) {
	cfg := newConfig(opts)
	g, err := governor.New(cfg.governor, cfg.tuning)
	if err != nil {
		return nil, fmt.Errorf("cuttlefish: %w", err)
	}
	att, err := g.Attach(m)
	if err != nil {
		return nil, fmt.Errorf("cuttlefish: %w", err)
	}
	return &Session{name: g.Name(), att: att}, nil
}

// Stop detaches the governor: the daemon (if any) is halted and removed
// from the machine's event queue, and the MSR state captured at Start is
// restored — unconditionally, so a failed daemon never leaks pinned
// frequencies; its error is still reported. Stop is idempotent.
func (s *Session) Stop() error { return s.att.Detach() }

// Governor returns the attached strategy's registered name.
func (s *Session) Governor() string { return s.name }

// Daemon exposes the runtime's exploration state (slab list, sample count)
// for reporting; nil for governors that run without a daemon.
func (s *Session) Daemon() *core.Daemon { return s.att.Daemon() }

// Segment is the unit of simulated work: instructions with an LLC-miss
// density (the quantity TIPI measures), an IPC and a prefetch exposure.
type Segment = workload.Segment

// Source supplies segments to the machine's cores; the two runtime types
// below implement it.
type Source = workload.Source

// Region is one work-sharing parallel region (OpenMP-style static loop).
type Region = sched.Region

// RegionGen yields the region sequence of a work-sharing program.
type RegionGen = sched.RegionGen

// StaticProgram cycles a fixed region list for a number of iterations.
func StaticProgram(regions []Region, iterations int) RegionGen {
	return sched.StaticProgram(regions, iterations)
}

// NewWorkSharing builds the OpenMP-style runtime over the machine's cores.
func NewWorkSharing(cores int, gen RegionGen, seed int64) Source {
	return sched.NewWorkSharing(cores, gen, seed)
}

// Task is one async task in the async–finish model.
type Task = sched.Task

// RoundGen yields the root task set of each finish scope.
type RoundGen = sched.RoundGen

// SingleRound wraps a fixed task set as a one-round program.
func SingleRound(tasks []Task) RoundGen { return sched.SingleRound(tasks) }

// NewWorkStealing builds the HClib-style async–finish runtime.
func NewWorkStealing(cores int, gen RoundGen, seed int64) Source {
	return sched.NewWorkStealing(cores, gen, seed)
}

// Partition statically divides the socket's cores among co-running
// workloads (the paper's workflow future-work scenario). Assign each
// component a core range, then SetSource the partition on the machine.
type Partition = workload.Partition

// NewPartition creates an empty core partition.
func NewPartition() *Partition { return workload.NewPartition() }
