package cuttlefish

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each bench regenerates its artefact at a reduced
// scale and reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as a one-shot reproduction of the paper's result shapes (see
// EXPERIMENTS.md for the paper-vs-measured record; cmd/cuttlefish prints
// the full tables). Micro-benchmarks for the hot simulator paths follow.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/machine"
	"repro/internal/msr"
	"repro/internal/sched"
	"repro/internal/timeline"
	"repro/internal/workload"
)

// benchOptions shrink the runs so the full harness finishes in minutes.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Scale = 0.12
	o.Reps = 2
	return o
}

// BenchmarkTable1 regenerates the benchmark census.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var distinct int
		for _, r := range rows {
			distinct += r.Distinct
		}
		b.ReportMetric(float64(distinct), "slabs")
	}
}

// BenchmarkTable1Timeline regenerates the census with the flight
// recorder armed. Compare against BenchmarkTable1 for the recorder's
// overhead; BENCH_obs.json records the reference delta (< 3%).
func BenchmarkTable1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := benchOptions()
		o.Timeline = timeline.New("bench")
		rows, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		var distinct int
		for _, r := range rows {
			distinct += r.Distinct
		}
		b.ReportMetric(float64(distinct), "slabs")
	}
}

// BenchmarkFig2 regenerates the TIPI/JPI execution timelines.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		recs, err := experiments.Fig2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var pts int
		for _, r := range recs {
			pts += r.Len()
		}
		b.ReportMetric(float64(pts), "samples")
	}
}

// BenchmarkFig3a regenerates the core-frequency JPI sweep.
func BenchmarkFig3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3a(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "points")
	}
}

// BenchmarkFig3b regenerates the uncore-frequency JPI sweep.
func BenchmarkFig3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig3b(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(pts)), "points")
	}
}

// BenchmarkFig10 regenerates the OpenMP policy comparison and reports the
// paper's headline geomeans.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.Fig10(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.GeoEnergySavings[governor.Cuttlefish], "energy-savings-%")
		b.ReportMetric(cmp.GeoSlowdown[governor.Cuttlefish], "slowdown-%")
		b.ReportMetric(cmp.GeoEDPSavings[governor.Cuttlefish], "edp-savings-%")
	}
}

// BenchmarkFig11 regenerates the HClib policy comparison.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.GeoEnergySavings[governor.Cuttlefish], "energy-savings-%")
		b.ReportMetric(cmp.GeoSlowdown[governor.Cuttlefish], "slowdown-%")
	}
}

// BenchmarkTable2 regenerates the frequency-settings report.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var resolved float64
		for _, r := range rows {
			resolved += r.PctCFResolved
		}
		b.ReportMetric(resolved/float64(len(rows)), "avg-cf-resolved-%")
	}
}

// BenchmarkTable3 regenerates the Tinv sensitivity study (two points at
// bench scale; the CLI runs all four).
func BenchmarkTable3(b *testing.B) {
	o := benchOptions()
	o.Reps = 1
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(o, []float64{10e-3, 20e-3})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].EnergySavings, "savings-at-20ms-%")
	}
}

// BenchmarkAblation quantifies the §4.4/§4.5/Algorithm-3 optimisations: it
// reports the exploration share with everything on vs everything off.
func BenchmarkAblation(b *testing.B) {
	o := benchOptions()
	o.Reps = 1
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation([]string{"MiniFE"}, o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Variant {
			case experiments.AblationFull:
				b.ReportMetric(r.ExplorationPct, "explore-full-%")
			case experiments.AblationNone:
				b.ReportMetric(r.ExplorationPct, "explore-none-%")
			}
		}
	}
}

// BenchmarkDDCM compares DVFS and duty-cycle modulation at matched
// throttle, the knob study behind the paper's DVFS+UFS design choice.
func BenchmarkDDCM(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DDCMStudy([]string{"Heat-irt"}, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].DVFSEnergySavings, "dvfs-savings-%")
		b.ReportMetric(rows[0].DDCMEnergySavings, "ddcm-savings-%")
	}
}

// BenchmarkMPIX runs the §4.6 cluster extension: a 2-node balanced MPI+X
// program under per-node Cuttlefish vs Default.
func BenchmarkMPIX(b *testing.B) {
	app := cluster.App{
		Steps: 40,
		Compute: func(rank, step int) []sched.Region {
			return []sched.Region{{
				Seg:    workload.Segment{Instructions: 2e7, MissPerInstr: 0.066, IPC: 2, Exposure: 0.6},
				Chunks: 160,
			}}
		},
		ExchangeBytes: func(rank, step int) float64 { return 4 << 20 },
	}
	for i := 0; i < b.N; i++ {
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 2
		cfg.Tuning.WarmupSec = 0.2
		cfg.Governor = GovernorDefault
		def, err := cluster.Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Governor = GovernorCuttlefish
		cf, err := cluster.Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(1-cf.Joules/def.Joules), "cluster-savings-%")
	}
}

// BenchmarkOracle verifies the daemon against the exhaustive frequency
// sweep and reports the JPI gap.
func BenchmarkOracle(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Oracle("Heat-irt", o, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GapPct, "jpi-gap-%")
	}
}

// --- micro-benchmarks of the simulator's hot paths ---

// BenchmarkMachineStep measures one simulation quantum of a fully loaded
// 20-core socket.
func BenchmarkMachineStep(b *testing.B) {
	m := machine.MustNew(machine.DefaultConfig())
	seg := workload.Segment{Instructions: 1e18, MissPerInstr: 0.05, IPC: 2}
	src := sched.NewWorkSharing(20, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 20}}, 1), 1)
	m.SetSource(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Step()
	}
}

// BenchmarkEngineStepWorkers measures one quantum across engine worker
// counts: the sharded driver's dispatch-plus-barrier cost versus the serial
// path (on multi-core hosts the sharded rows win; on a single-CPU host they
// expose pure coordination overhead).
func BenchmarkEngineStepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := machine.DefaultConfig()
			cfg.Workers = workers
			m := machine.MustNew(cfg)
			defer m.Close()
			seg := workload.Segment{Instructions: 1e18, MissPerInstr: 0.05, IPC: 2}
			m.SetSource(sched.NewWorkSharing(20, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 20}}, 1), 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Step()
			}
		})
	}
}

// BenchmarkEngineRunBatching measures a full daemon-paced run (a component
// every 20 ms, the paper's Tinv) with run-to-next-event batching on
// (batch=0: one engine dispatch per Tinv window) versus off (batch=1: one
// dispatch per quantum, the pre-engine behaviour).
func BenchmarkEngineRunBatching(b *testing.B) {
	for _, batch := range []int{1, 0} {
		name := "per-quantum"
		if batch == 0 {
			name = "to-next-event"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := machine.DefaultConfig()
				cfg.BatchQuanta = batch
				m := machine.MustNew(cfg)
				m.Schedule(&machine.Component{Period: 20e-3, Tick: func(float64) float64 { return 0 }}, 20e-3)
				seg := workload.Segment{Instructions: 5e6, MissPerInstr: 0.03, IPC: 2}
				src := sched.NewWorkSharing(20, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 400}}, 40), 1)
				m.SetSource(src)
				m.Run(60)
				if !m.Finished() {
					b.Fatal("run did not finish")
				}
			}
		})
	}
}

// BenchmarkDaemonTick measures one Tinv activation of the Cuttlefish
// daemon, including the MSR reads of the profiler.
func BenchmarkDaemonTick(b *testing.B) {
	m := machine.MustNew(machine.DefaultConfig())
	sess, err := Start(m)
	if err != nil {
		b.Fatal(err)
	}
	seg := workload.Segment{Instructions: 1e18, MissPerInstr: 0.05, IPC: 2}
	m.SetSource(sched.NewWorkSharing(20, sched.StaticProgram([]sched.Region{{Seg: seg, Chunks: 20}}, 1), 1))
	for i := 0; i < 5000; i++ { // run past warmup
		m.Step()
	}
	d := sess.Daemon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Tick(2.5 + float64(i)*0.02)
	}
}

// BenchmarkWorkStealingNextSegment measures the scheduler's task-dispatch
// path under steady stealing pressure.
func BenchmarkWorkStealingNextSegment(b *testing.B) {
	leaf := workload.Segment{Instructions: 1000, IPC: 2}
	gen := func(round int) ([]sched.Task, bool) {
		tasks := make([]sched.Task, 1024)
		for i := range tasks {
			tasks[i] = sched.Task{Seg: leaf}
		}
		return tasks, true // endless rounds
	}
	ws := sched.NewWorkStealing(20, gen, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := i % 20
		if _, ok := ws.NextSegment(core, 0); ok {
			ws.Complete(core, 0)
		}
	}
}

// BenchmarkMSRRead measures the emulated msr-safe read path the profiler
// uses 23 times per Tinv.
func BenchmarkMSRRead(b *testing.B) {
	m := machine.MustNew(machine.DefaultConfig())
	dev := m.Device()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Read(msr.IA32FixedCtr0, i%20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBenchmarkBuild measures workload-graph construction for the
// heaviest generator (AMG's region program).
func BenchmarkBenchmarkBuild(b *testing.B) {
	spec, _ := bench.Get("AMG")
	for i := 0; i < b.N; i++ {
		if _, err := spec.Build(bench.Params{Cores: 20, Scale: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGovernorDispatch proves the Governor interface indirection adds
// no measurable cost to the engine hot path: the same daemon-paced run is
// wired by hand (the pre-registry Start path: save MSRs, build the daemon,
// schedule its component, stop, restore) and through the registered
// governor's Attach/Detach. Compare the two sub-benchmarks against each
// other and against the BenchmarkTable1 baseline (≈235 ms): the deltas sit
// in run-to-run noise, because dispatch happens once per run while the
// engine executes millions of quanta.
func BenchmarkGovernorDispatch(b *testing.B) {
	run := func(b *testing.B, attach func(m *machine.Machine) func() error) {
		spec, _ := bench.Get("SOR-irt")
		for i := 0; i < b.N; i++ {
			m := machine.MustNew(machine.DefaultConfig())
			detach := attach(m)
			src, err := spec.Build(bench.Params{Cores: 20, Scale: 0.05, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			m.SetSource(src)
			m.Run(400)
			if !m.Finished() {
				b.Fatal("run did not finish")
			}
			if err := detach(); err != nil {
				b.Fatal(err)
			}
			m.Close()
		}
	}
	b.Run("direct", func(b *testing.B) {
		run(b, func(m *machine.Machine) func() error {
			dev := m.Device()
			dev.Save()
			dcfg := core.DefaultConfig()
			d, err := core.NewDaemon(dcfg, dev, 20, m.Config().CoreGrid, m.Config().UncoreGrid, m.Now())
			if err != nil {
				b.Fatal(err)
			}
			comp := &machine.Component{Period: dcfg.TinvSec, Core: dcfg.PinnedCore, Tick: d.Tick}
			m.Schedule(comp, m.Now()+dcfg.TinvSec)
			return func() error {
				d.Stop()
				m.Unschedule(comp)
				if err := d.Err(); err != nil {
					return err
				}
				return dev.Restore()
			}
		})
	})
	b.Run("registry", func(b *testing.B) {
		run(b, func(m *machine.Machine) func() error {
			g, err := governor.New(governor.Cuttlefish, governor.Tuning{})
			if err != nil {
				b.Fatal(err)
			}
			att, err := g.Attach(m)
			if err != nil {
				b.Fatal(err)
			}
			return att.Detach
		})
	})
}
